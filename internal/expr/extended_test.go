package expr

import (
	"strings"
	"testing"
)

func TestParseIntersection(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"a&b", "a&b"},
		{"a&b&c", "(a&b)&c"},
		{"a+b&c", "a+b&c"},     // & binds tighter than +
		{"(a+b)&c", "(a+b)&c"}, // parens preserved where needed
		{"ab&cd", "ab&cd"},     // concat binds tighter than &
		{"(ab)*&(a+b)", "(ab)*&(a+b)"},
	}
	for _, tc := range cases {
		e, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		e2, err := Parse(e.String())
		if err != nil || !Equal(e, e2) {
			t.Errorf("round trip failed for %q", tc.in)
		}
	}
}

func TestParseIntersectionPrecedence(t *testing.T) {
	e := MustParse("a+b&c")
	u, ok := e.(Union)
	if !ok {
		t.Fatalf("top is %T, want Union", e)
	}
	if _, ok := u.R.(Inter); !ok {
		t.Fatalf("right of union is %T, want Inter", u.R)
	}
}

func TestIsExtended(t *testing.T) {
	if IsExtended(MustParse("a(b+c)*")) {
		t.Errorf("core expression flagged extended")
	}
	for _, src := range []string{"a&b", "(a&b)c", "a+(b&c)", "(a&b)*"} {
		if !IsExtended(MustParse(src)) {
			t.Errorf("%q not flagged extended", src)
		}
	}
}

func TestIntersectionLanguage(t *testing.T) {
	// (aa)* & (aaa)* has the language (a^6)*.
	e := MustParse("(aa)*&(aaa)*")
	f, err := Representative(e)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ToNFA(f)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l <= 12; l++ {
		word := make([]int, l)
		want := l%6 == 0
		if got := n.AcceptsWord(word); got != want {
			t.Errorf("a^%d accepted=%v, want %v", l, got, want)
		}
	}
}

func TestIntersectionCCSEquivalence(t *testing.T) {
	// (aa)* & (aaa)* is language-equal to (aaaaaa)*.
	lang, err := LanguageEquivalent(MustParse("(aa)*&(aaa)*"), MustParse("(aaaaaa)*"))
	if err != nil {
		t.Fatal(err)
	}
	if !lang {
		t.Errorf("(aa)*&(aaa)* must have language (a^6)*")
	}
	// Intersection with Sigma* is a CCS identity up to language; up to
	// strong equivalence a&a ~ a holds (the product of the two-state
	// representative with itself is itself).
	ccsEq, err := CCSEquivalent(MustParse("a&a"), MustParse("a"))
	if err != nil {
		t.Fatal(err)
	}
	if !ccsEq {
		t.Errorf("a&a ~ a must hold")
	}
	// Intersection annihilates disjoint symbols.
	empty, err := LanguageEquivalent(MustParse("a&b"), MustParse("0"))
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Errorf("a&b must denote the empty language")
	}
}

func TestIntersectionInsideCoreOperators(t *testing.T) {
	// Embedding a product inside concatenation and star must stay
	// language-correct: c((aa)*&(aa)*)  ==language==  c(aa)*.
	lang, err := LanguageEquivalent(MustParse("c((aa)*&(aa)*)"), MustParse("c(aa)*"))
	if err != nil {
		t.Fatal(err)
	}
	if !lang {
		t.Errorf("embedded intersection broke concatenation")
	}
	lang, err = LanguageEquivalent(MustParse("(a&a)*"), MustParse("a*"))
	if err != nil {
		t.Fatal(err)
	}
	if !lang {
		t.Errorf("embedded intersection broke star")
	}
}

// TestSuccinctness is the Section 6 observation made executable: nested
// intersections of cycles grow the representative multiplicatively (lcm of
// the cycle lengths) while the expression grows additively.
func TestSuccinctness(t *testing.T) {
	cases := []struct {
		src       string
		minStates int
	}{
		{"(aa)*&(aaa)*", 6},
		{"(aa)*&(aaa)*&(aaaaa)*", 30},
		{"(aa)*&(aaa)*&(aaaaa)*&(aaaaaaa)*", 210},
	}
	for _, tc := range cases {
		e := MustParse(tc.src)
		f, err := Representative(e)
		if err != nil {
			t.Fatal(err)
		}
		if f.NumStates() < tc.minStates {
			t.Errorf("%q: %d states, expected at least %d (lcm of cycles)",
				tc.src, f.NumStates(), tc.minStates)
		}
	}
	// The crisp claim: the deepest expression has ~length 30 yet a
	// representative above 200 states — states grow multiplicatively, the
	// expression only additively. Lemma 2.3.1's linear bound is strictly a
	// core-fragment property.
	deep := MustParse(cases[len(cases)-1].src)
	f, err := Representative(deep)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumStates() <= 2*deep.Length() {
		t.Errorf("succinctness not exhibited: length %d, states %d", deep.Length(), f.NumStates())
	}
}

func TestExtendedStringRendering(t *testing.T) {
	e := Inter{L: Union{L: Sym{Name: "a"}, R: Sym{Name: "b"}}, R: Sym{Name: "c"}}
	if got := e.String(); !strings.Contains(got, "(a+b)&c") {
		t.Errorf("String = %q", got)
	}
	if e.Length() != 5 {
		t.Errorf("Length = %d, want 5", e.Length())
	}
}
