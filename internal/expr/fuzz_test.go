package expr

import (
	"errors"
	"strings"
	"testing"
)

// TestParseDepthLimit: adversarial nesting returns the typed depth error;
// reasonable nesting is untouched.
func TestParseDepthLimit(t *testing.T) {
	deep := strings.Repeat("(", MaxParseDepth+1) + "a" + strings.Repeat(")", MaxParseDepth+1)
	_, err := Parse(deep)
	if !errors.Is(err, ErrParseDepth) {
		t.Fatalf("deep expression error = %v, want ErrParseDepth", err)
	}
	// Unbalanced flooding — all open, no close — must hit the same guard,
	// not recurse to the missing-')' report.
	_, err = Parse(strings.Repeat("(", MaxParseDepth+100))
	if !errors.Is(err, ErrParseDepth) {
		t.Fatalf("paren flood error = %v, want ErrParseDepth", err)
	}
	ok := strings.Repeat("(", 100) + "a+b" + strings.Repeat(")", 100)
	if _, err := Parse(ok); err != nil {
		t.Fatalf("100-deep expression rejected: %v", err)
	}
}

// FuzzParse: the parser never panics, and an accepted expression's
// rendering reparses to the same rendering (String is a fixed point).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"a", "0", "a+b", "ab", "a.b", "(ab)*", "a(b+c)*",
		"a&b", "(a+b)&(a+c)", "a**", "((((a))))",
		"a+", "(", ")", "(a", "a)", "", "  ", "a b", "0*0",
		"a|b", "a\t+\tb", strings.Repeat("(a+", 20) + "b" + strings.Repeat(")", 20),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		rendered := e.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering %q of accepted %q does not reparse: %v", rendered, src, err)
		}
		if again := back.String(); again != rendered {
			t.Fatalf("String not a fixed point: %q -> %q -> %q", src, rendered, again)
		}
	})
}
