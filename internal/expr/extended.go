package expr

// Extended star expressions: Section 6 of the paper proposes extending the
// calculus with operators like intersection, whose semantics is a "direct
// product of states" construction on the representative processes, and
// observes that extended expressions are succinct programs with large
// representative FSPs — nesting products multiplies state counts while
// adding only linearly to expression length.
//
// This file adds the intersection operator '&' with exactly that
// semantics: the representative of r1 & r2 is the synchronized product of
// the representatives. The Lemma 2.3.1 linear-size guarantee deliberately
// does NOT extend to it (that is the point); see the E14 experiment.

// Inter is the extended-expression intersection r1 & r2.
type Inter struct{ L, R Expr }

func (Inter) isExpr() {}

func (i Inter) String() string {
	return wrapUnionOrInter(i.L) + "&" + wrapUnionOrInter(i.R)
}

// Length implements Expr.
func (i Inter) Length() int { return i.L.Length() + i.R.Length() + 1 }

func wrapUnionOrInter(e Expr) string {
	switch e.(type) {
	case Union, Inter:
		return "(" + e.String() + ")"
	default:
		return e.String()
	}
}

// IsExtended reports whether e uses any extended operator, i.e. whether it
// falls outside the star-expression fragment of Definition 2.3.1.
func IsExtended(e Expr) bool {
	switch t := e.(type) {
	case Inter:
		return true
	case Union:
		return IsExtended(t.L) || IsExtended(t.R)
	case Concat:
		return IsExtended(t.L) || IsExtended(t.R)
	case Star:
		return IsExtended(t.Sub)
	default:
		return false
	}
}
