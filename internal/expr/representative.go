package expr

import (
	"fmt"

	"ccs/internal/automata"
	"ccs/internal/core"
	"ccs/internal/fsp"
)

// Representative constructs the representative FSP of e exactly per
// Definition 2.3.1 (Fig. 3). The result is an observable, standard FSP over
// the union of the expression's symbols; by Lemma 2.3.1 it has O(n) states
// and O(n^2) transitions for an expression of length n, built in O(n^2)
// time (verified by property tests).
//
// Sub-FSPs are built over a single shared builder; the construction for
// each operator manipulates initial-arc and extension sets exactly as the
// definition prescribes:
//
//	∅       : one state, no arcs, empty extension.
//	a       : p --a--> q with E(q) = {x}.
//	r1 ∪ r2 : new start receiving copies of both starts' initial arcs and
//	          the union of their extensions.
//	r1 · r2 : every accepting state of r1 receives copies of r2's start
//	          arcs; the extension relation becomes that of r2 alone.
//	r1*     : new accepting start receiving copies of r1's start arcs;
//	          every accepting state of r1 also receives copies of r1's
//	          start arcs (the loop back).
func Representative(e Expr) (*fsp.FSP, error) {
	return representativeOver(e, Symbols(e))
}

// constructor builds sub-FSPs into one shared builder. Each build call
// returns the sub-FSP's start state and its accepting set; acceptance is
// tracked per subtree because concatenation erases r1's extensions
// (E = E2 in Definition 2.3.1). syms carries the full symbol universe so
// nested extended operators build their operands over a common alphabet.
type constructor struct {
	b    *fsp.Builder
	syms []string
}

func (c *constructor) build(e Expr) (fsp.State, []fsp.State, error) {
	switch t := e.(type) {
	case Empty:
		return c.b.AddState(), nil, nil

	case Sym:
		p := c.b.AddState()
		q := c.b.AddState()
		c.b.ArcName(p, t.Name, q)
		return p, []fsp.State{q}, nil

	case Union:
		p1, acc1, err := c.build(t.L)
		if err != nil {
			return 0, nil, err
		}
		p2, acc2, err := c.build(t.R)
		if err != nil {
			return 0, nil, err
		}
		p := c.b.AddState()
		// A' = {p} x (A1(p1) ∪ A2(p2)).
		c.copyArcs(p, p1)
		c.copyArcs(p, p2)
		acc := append(append([]fsp.State{}, acc1...), acc2...)
		// E' = {p} x (E1(p1) ∪ E2(p2)).
		if contains(acc1, p1) || contains(acc2, p2) {
			acc = append(acc, p)
		}
		return p, acc, nil

	case Concat:
		p1, acc1, err := c.build(t.L)
		if err != nil {
			return 0, nil, err
		}
		p2, acc2, err := c.build(t.R)
		if err != nil {
			return 0, nil, err
		}
		// A' = {q : E1(q)={x}} x A2(p2); E = E2 — with the classical
		// case split the printed definition elides: when r2's start is
		// itself accepting (ε ∈ L(r2)), r1's accepting states remain
		// accepting, exactly as in the textbook NFA concatenation the
		// definition "follows closely". Without it the construction is not
		// language-faithful (a*b* would lose ε), and the states receiving
		// A2(p2) would not be strongly equivalent to p2.
		for _, q := range acc1 {
			c.copyArcs(q, p2)
		}
		acc := acc2
		if contains(acc2, p2) {
			acc = append(append([]fsp.State{}, acc2...), acc1...)
		}
		return p1, acc, nil

	case Star:
		p1, acc1, err := c.build(t.Sub)
		if err != nil {
			return 0, nil, err
		}
		p := c.b.AddState()
		// New accepting start receives A1(p1).
		c.copyArcs(p, p1)
		// A+(q) = A1(q) ∪ A1(p1) for accepting q.
		for _, q := range acc1 {
			c.copyArcs(q, p1)
		}
		return p, append(append([]fsp.State{}, acc1...), p), nil

	case Inter:
		// Extended operator (Section 6): the representative is the direct
		// product of the operands' representatives. The product is built as
		// a complete FSP over the shared symbols, then embedded into the
		// enclosing construction.
		f1, err := representativeOver(t.L, c.syms)
		if err != nil {
			return 0, nil, err
		}
		f2, err := representativeOver(t.R, c.syms)
		if err != nil {
			return 0, nil, err
		}
		prod, err := fsp.Intersect(f1, f2)
		if err != nil {
			return 0, nil, err
		}
		return c.embed(prod)

	default:
		return 0, nil, fmt.Errorf("expr: unknown expression node %T", e)
	}
}

// embed copies a complete FSP into the shared builder, returning its start
// and accepting set in builder coordinates.
func (c *constructor) embed(f *fsp.FSP) (fsp.State, []fsp.State, error) {
	offset := c.b.AddStates(f.NumStates())
	var acc []fsp.State
	for s := 0; s < f.NumStates(); s++ {
		for _, a := range f.Arcs(fsp.State(s)) {
			c.b.ArcName(offset+fsp.State(s), f.Alphabet().Name(a.Act), offset+a.To)
		}
		if f.Accepting(fsp.State(s)) {
			acc = append(acc, offset+fsp.State(s))
		}
	}
	if err := c.b.Err(); err != nil {
		return 0, nil, err
	}
	return offset + f.Start(), acc, nil
}

func contains(states []fsp.State, s fsp.State) bool {
	for _, x := range states {
		if x == s {
			return true
		}
	}
	return false
}

// copyArcs duplicates src's current outgoing arcs onto dst. The snapshot
// returned by ArcSnapshot keeps the iteration safe when dst == src (which
// happens under nested stars).
func (c *constructor) copyArcs(dst, src fsp.State) {
	if dst == src {
		return
	}
	for _, a := range c.b.ArcSnapshot(src) {
		c.b.Arc(dst, a.Act, a.To)
	}
}

// ToNFA views an observable standard FSP as a classical NFA (symbol i-1 of
// the NFA is observable action i of the FSP).
func ToNFA(f *fsp.FSP) (*automata.NFA, error) {
	cls := fsp.Classify(f)
	if !cls.Observable || !cls.Standard {
		return nil, fmt.Errorf("expr: %q is not an observable standard FSP", f.Name())
	}
	n, err := automata.NewNFA(f.NumStates(), f.Alphabet().NumObservable(), int32(f.Start()))
	if err != nil {
		return nil, err
	}
	for s := 0; s < f.NumStates(); s++ {
		n.SetAccept(int32(s), f.Accepting(fsp.State(s)))
		for _, a := range f.Arcs(fsp.State(s)) {
			if err := n.AddArc(int32(s), int(a.Act)-1, int32(a.To)); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

// harmonize rebuilds the representatives of two expressions over the union
// alphabet so they can be compared (the paper's equivalences require equal
// Sigma).
func harmonize(e1, e2 Expr) (*fsp.FSP, *fsp.FSP, error) {
	// Union of symbols, e1's first.
	syms := Symbols(e1)
	seen := map[string]bool{}
	for _, s := range syms {
		seen[s] = true
	}
	for _, s := range Symbols(e2) {
		if !seen[s] {
			syms = append(syms, s)
		}
	}
	f1, err := representativeOver(e1, syms)
	if err != nil {
		return nil, nil, err
	}
	f2, err := representativeOver(e2, syms)
	if err != nil {
		return nil, nil, err
	}
	return f1, f2, nil
}

func representativeOver(e Expr, syms []string) (*fsp.FSP, error) {
	alpha := fsp.NewAlphabet(syms...)
	b := fsp.NewBuilderWith(e.String(), alpha, fsp.MustVarTable(fsp.StandardVar))
	c := &constructor{b: b, syms: syms}
	start, acc, err := c.build(e)
	if err != nil {
		return nil, err
	}
	b.SetStart(start)
	for _, s := range acc {
		b.Accept(s)
	}
	f, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("expr: representative of %q: %w", e, err)
	}
	return f, nil
}

// CCSEquivalent reports whether two star expressions have the same CCS
// semantics: strong equivalence of the representatives' start states
// (Definition 2.3.1). This is the CCS equivalence problem of Section 2.3.
func CCSEquivalent(e1, e2 Expr) (bool, error) {
	f1, f2, err := harmonize(e1, e2)
	if err != nil {
		return false, err
	}
	return core.StrongEquivalent(f1, f2)
}

// LanguageEquivalent reports whether two star expressions denote the same
// language under the classical reading — NFA equivalence of the
// representatives, which by construction accept exactly the classical
// languages.
func LanguageEquivalent(e1, e2 Expr) (bool, error) {
	f1, f2, err := harmonize(e1, e2)
	if err != nil {
		return false, err
	}
	n1, err := ToNFA(f1)
	if err != nil {
		return false, err
	}
	n2, err := ToNFA(f2)
	if err != nil {
		return false, err
	}
	eq, _, err := automata.EquivalentNFA(n1, n2)
	return eq, err
}
