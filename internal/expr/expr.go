// Package expr implements the star expressions of Section 2.3: regular
// expression syntax (∅, symbols, union, concatenation, Kleene star) with CCS
// semantics. The semantics of a star expression is the class of observable
// standard FSPs whose start states are strongly equivalent to the start
// state of the expression's representative FSP, constructed inductively by
// Definition 2.3.1 (Fig. 3).
//
// Two star expressions are CCS-equivalent iff their representative FSPs have
// strongly equivalent start states; they are language-equivalent iff the
// representatives — which are ordinary NFAs — accept the same language. The
// two notions genuinely differ: r·(s∪t) = r·s ∪ r·t holds for languages but
// fails in CCS (Section 2.3, item 3).
package expr

import (
	"errors"
	"fmt"
)

// MaxParseDepth caps parenthesis nesting in Parse. The recursive-descent
// parser burns one stack frame chain per '(' — the cap turns adversarial
// inputs like ((((…)))) into a typed error instead of a stack overflow.
const MaxParseDepth = 10000

// ErrParseDepth is wrapped by the error Parse returns for expressions
// whose parenthesis nesting exceeds MaxParseDepth.
var ErrParseDepth = errors.New("expr: expression nests too deeply")

// Expr is the AST of a star expression.
type Expr interface {
	fmt.Stringer
	isExpr()
	// Length is the number of symbols of the expression string, the size
	// measure of Lemma 2.3.1.
	Length() int
}

// Empty is the expression ∅, denoting (in CCS semantics) the process with no
// transitions and no extension.
type Empty struct{}

func (Empty) isExpr()        {}
func (Empty) String() string { return "0" }

// Length implements Expr.
func (Empty) Length() int { return 1 }

// Sym is a single action symbol.
type Sym struct{ Name string }

func (Sym) isExpr()          {}
func (s Sym) String() string { return s.Name }

// Length implements Expr.
func (Sym) Length() int { return 1 }

// Union is r1 ∪ r2.
type Union struct{ L, R Expr }

func (Union) isExpr() {}
func (u Union) String() string {
	return u.L.String() + "+" + u.R.String()
}

// Length implements Expr.
func (u Union) Length() int { return u.L.Length() + u.R.Length() + 1 }

// Concat is r1 · r2.
type Concat struct{ L, R Expr }

func (Concat) isExpr() {}
func (c Concat) String() string {
	return wrapUnion(c.L) + wrapUnion(c.R)
}

// Length implements Expr.
func (c Concat) Length() int { return c.L.Length() + c.R.Length() + 1 }

// Star is r*.
type Star struct{ Sub Expr }

func (Star) isExpr() {}
func (s Star) String() string {
	return wrapNonAtom(s.Sub) + "*"
}

// Length implements Expr.
func (s Star) Length() int { return s.Sub.Length() + 1 }

func wrapUnion(e Expr) string {
	if _, ok := e.(Union); ok {
		return "(" + e.String() + ")"
	}
	return e.String()
}

func wrapNonAtom(e Expr) string {
	switch e.(type) {
	case Sym, Empty, Star:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// Parse reads a star expression. Grammar (standard regular-expression
// precedence, star > concatenation > union):
//
//	expr   := term ('+' term)*
//	term   := factor+
//	factor := atom '*'*
//	atom   := SYMBOL | '0' | '(' expr ')'
//
// A SYMBOL is a single letter; '0' denotes ∅. Whitespace and '.' (explicit
// concatenation) are permitted and ignored between factors.
func Parse(input string) (Expr, error) {
	p := &parser{src: input}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("expr: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return e, nil
}

// MustParse is Parse for statically known inputs; it panics on error.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src   string
	pos   int
	depth int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '.') {
		p.pos++
	}
}

func (p *parser) peek() (byte, bool) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseInter()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok || (c != '+' && c != '|') {
			return left, nil
		}
		p.pos++
		right, err := p.parseInter()
		if err != nil {
			return nil, err
		}
		left = Union{L: left, R: right}
	}
}

// parseInter handles the extended intersection operator '&' (Section 6),
// binding tighter than union, looser than concatenation.
func (p *parser) parseInter() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok || c != '&' {
			return left, nil
		}
		p.pos++
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = Inter{L: left, R: right}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok || c == '+' || c == '|' || c == '&' || c == ')' {
			return left, nil
		}
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = Concat{L: left, R: right}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok || c != '*' {
			return atom, nil
		}
		p.pos++
		atom = Star{Sub: atom}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	c, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("expr: unexpected end of input")
	}
	switch {
	case c == '(':
		p.depth++
		if p.depth > MaxParseDepth {
			return nil, fmt.Errorf("%w: more than %d nested '(' at offset %d", ErrParseDepth, MaxParseDepth, p.pos)
		}
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.depth--
		c2, ok := p.peek()
		if !ok || c2 != ')' {
			return nil, fmt.Errorf("expr: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return e, nil
	case c == '0':
		p.pos++
		return Empty{}, nil
	case isSymbolChar(c):
		p.pos++
		return Sym{Name: string(c)}, nil
	default:
		return nil, fmt.Errorf("expr: unexpected %q at offset %d", c, p.pos)
	}
}

func isSymbolChar(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Symbols returns the distinct action symbols of e in first-appearance
// order.
func Symbols(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch t := e.(type) {
		case Sym:
			if !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		case Union:
			walk(t.L)
			walk(t.R)
		case Concat:
			walk(t.L)
			walk(t.R)
		case Inter:
			walk(t.L)
			walk(t.R)
		case Star:
			walk(t.Sub)
		}
	}
	walk(e)
	return out
}

// Equal reports structural equality of two ASTs.
func Equal(a, b Expr) bool {
	return a.String() == b.String()
}
