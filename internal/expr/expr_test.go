package expr

import (
	"math/rand"
	"strings"
	"testing"

	"ccs/internal/automata"
	"ccs/internal/fsp"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String() rendering
	}{
		{"a", "a"},
		{"0", "0"},
		{"ab", "ab"},
		{"a.b", "ab"},
		{"a+b", "a+b"},
		{"a|b", "a+b"},
		{"a*", "a*"},
		{"a**", "a**"},
		{"(a+b)c", "(a+b)c"},
		{"a(b+c)", "a(b+c)"},
		{"(ab)*", "(ab)*"},
		{"a b c", "abc"},
		{"((a))", "a"},
		{"a+b+c", "a+b+c"},
	}
	for _, tc := range cases {
		e, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		// Round trip: parsing the rendering yields the same rendering.
		e2, err := Parse(e.String())
		if err != nil {
			t.Errorf("reparse %q: %v", e.String(), err)
			continue
		}
		if !Equal(e, e2) {
			t.Errorf("round trip changed %q -> %q", e.String(), e2.String())
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// a+bc* parses as a + (b(c*)).
	e := MustParse("a+bc*")
	u, ok := e.(Union)
	if !ok {
		t.Fatalf("top is %T, want Union", e)
	}
	c, ok := u.R.(Concat)
	if !ok {
		t.Fatalf("right of union is %T, want Concat", u.R)
	}
	if _, ok := c.R.(Star); !ok {
		t.Fatalf("right of concat is %T, want Star", c.R)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "(", "(a", "a)", "+a", "a+", "*", "()", "a%b", "a("} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestSymbols(t *testing.T) {
	e := MustParse("ab(c+a)*")
	got := Symbols(e)
	if strings.Join(got, "") != "abc" {
		t.Errorf("Symbols = %v, want [a b c]", got)
	}
}

func TestLength(t *testing.T) {
	if got := MustParse("a+b").Length(); got != 3 {
		t.Errorf("Length(a+b) = %d, want 3", got)
	}
	if got := MustParse("(ab)*").Length(); got != 4 {
		t.Errorf("Length((ab)*) = %d, want 4", got)
	}
}

// languageOf computes the language of an expression up to maxLen, directly
// from the AST semantics (independent of the representative construction).
func languageOf(e Expr, maxLen int) map[string]bool {
	switch t := e.(type) {
	case Empty:
		return map[string]bool{}
	case Sym:
		return map[string]bool{t.Name: true}
	case Union:
		out := languageOf(t.L, maxLen)
		for w := range languageOf(t.R, maxLen) {
			out[w] = true
		}
		return out
	case Concat:
		out := map[string]bool{}
		for u := range languageOf(t.L, maxLen) {
			for v := range languageOf(t.R, maxLen) {
				if len(u)+len(v) <= maxLen {
					out[u+v] = true
				}
			}
		}
		return out
	case Star:
		out := map[string]bool{"": true}
		base := languageOf(t.Sub, maxLen)
		for {
			added := false
			for u := range out {
				for v := range base {
					w := u + v
					if len(w) <= maxLen && len(v) > 0 && !out[w] {
						out[w] = true
						added = true
					}
				}
			}
			if !added {
				return out
			}
		}
	default:
		return nil
	}
}

// acceptsString runs the representative NFA on a word given as a string of
// single-letter symbols.
func acceptsString(f *fsp.FSP, n *automata.NFA, word string) bool {
	syms := make([]int, len(word))
	for i := 0; i < len(word); i++ {
		act, ok := f.Alphabet().Lookup(string(word[i]))
		if !ok {
			return false
		}
		syms[i] = int(act) - 1
	}
	return n.AcceptsWord(syms)
}

func TestRepresentativeLanguage(t *testing.T) {
	// The representative FSP must accept exactly the classical language.
	exprs := []string{
		"0", "a", "ab", "a+b", "a*", "(ab)*", "a(b+c)", "ab+ac",
		"(a+b)*abb", "a*b*", "(a+ab)*", "0a", "a0", "(0+a)b", "a*0",
	}
	const maxLen = 6
	for _, src := range exprs {
		e := MustParse(src)
		f, err := Representative(e)
		if err != nil {
			t.Fatalf("Representative(%q): %v", src, err)
		}
		cls := fsp.Classify(f)
		if !cls.Observable || !cls.Standard {
			t.Errorf("%q: representative must be observable standard", src)
		}
		n, err := ToNFA(f)
		if err != nil {
			t.Fatalf("ToNFA(%q): %v", src, err)
		}
		want := languageOf(e, maxLen)
		// Enumerate all words up to maxLen over the expression's symbols.
		syms := Symbols(e)
		var words []string
		var grow func(prefix string)
		grow = func(prefix string) {
			words = append(words, prefix)
			if len(prefix) == maxLen {
				return
			}
			for _, s := range syms {
				grow(prefix + s)
			}
		}
		grow("")
		for _, w := range words {
			if got := acceptsString(f, n, w); got != want[w] {
				t.Errorf("%q: word %q accepted=%v, want %v", src, w, got, want[w])
			}
		}
	}
}

func TestLemma231SizeBounds(t *testing.T) {
	// Lemma 2.3.1: representative has O(n) states — in fact at most n+1 —
	// and O(n^2) transitions for expression length n.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		e := randomExpr(rng, 1+rng.Intn(8))
		f, err := Representative(e)
		if err != nil {
			t.Fatalf("Representative(%q): %v", e, err)
		}
		n := e.Length()
		if f.NumStates() > 2*n+1 {
			t.Errorf("%q (len %d): %d states exceeds linear bound", e, n, f.NumStates())
		}
		if f.NumTransitions() > n*n+n {
			t.Errorf("%q (len %d): %d transitions exceeds quadratic bound", e, n, f.NumTransitions())
		}
	}
}

// randomExpr generates a random expression with the given number of
// operator applications.
func randomExpr(rng *rand.Rand, ops int) Expr {
	if ops <= 0 {
		switch rng.Intn(4) {
		case 0:
			return Empty{}
		default:
			return Sym{Name: string(rune('a' + rng.Intn(3)))}
		}
	}
	switch rng.Intn(3) {
	case 0:
		l := rng.Intn(ops)
		return Union{L: randomExpr(rng, l), R: randomExpr(rng, ops-1-l)}
	case 1:
		l := rng.Intn(ops)
		return Concat{L: randomExpr(rng, l), R: randomExpr(rng, ops-1-l)}
	default:
		return Star{Sub: randomExpr(rng, ops-1)}
	}
}

func TestCCSEquivalentReflexive(t *testing.T) {
	for _, src := range []string{"a", "a+b", "(ab)*", "a(b+c)"} {
		e := MustParse(src)
		eq, err := CCSEquivalent(e, e)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("%q not CCS-equivalent to itself", src)
		}
	}
}

func TestUnionCommutative(t *testing.T) {
	eq, err := CCSEquivalent(MustParse("a+b"), MustParse("b+a"))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("a+b and b+a must be CCS-equivalent")
	}
}

func TestDistributivityFailsInCCS(t *testing.T) {
	// Section 2.3 item 3: r·(s∪t) = r·s ∪ r·t holds for languages but not
	// for CCS semantics.
	left := MustParse("a(b+c)")
	right := MustParse("ab+ac")
	lang, err := LanguageEquivalent(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if !lang {
		t.Errorf("languages of a(b+c) and ab+ac must coincide")
	}
	ccsEq, err := CCSEquivalent(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if ccsEq {
		t.Errorf("a(b+c) and ab+ac must NOT be CCS-equivalent")
	}
}

func TestAnnihilatorFailsInCCS(t *testing.T) {
	// Section 2.3 item 3: r·∅ = ∅ holds for languages but not in CCS: a·∅
	// can still perform the action a.
	left := MustParse("a0")
	right := MustParse("0")
	lang, err := LanguageEquivalent(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if !lang {
		t.Errorf("languages of a0 and 0 must coincide (both empty)")
	}
	ccsEq, err := CCSEquivalent(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if ccsEq {
		t.Errorf("a·∅ and ∅ must NOT be CCS-equivalent")
	}
}

func TestCCSEquivalenceImpliesLanguageEquivalence(t *testing.T) {
	// Proposition 2.2.3(a) restricted to standard processes: strong
	// equivalence refines language equivalence. Sample random expression
	// pairs; whenever CCS-equivalent, they must be language-equivalent.
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		e1 := randomExpr(rng, 1+rng.Intn(5))
		e2 := randomExpr(rng, 1+rng.Intn(5))
		ccsEq, err := CCSEquivalent(e1, e2)
		if err != nil {
			t.Fatal(err)
		}
		if !ccsEq {
			continue
		}
		checked++
		langEq, err := LanguageEquivalent(e1, e2)
		if err != nil {
			t.Fatal(err)
		}
		if !langEq {
			t.Fatalf("%q ~ %q but languages differ", e1, e2)
		}
	}
	if checked == 0 {
		t.Log("no CCS-equivalent pairs sampled; inclusion vacuously checked")
	}
}

func TestToNFARejectsNonStandard(t *testing.T) {
	b := fsp.NewBuilder("tau")
	b.AddStates(2)
	b.ArcName(0, fsp.TauName, 1)
	f := b.MustBuild()
	if _, err := ToNFA(f); err == nil {
		t.Error("ToNFA accepted a non-observable FSP")
	}
}
