// Package gen provides seeded workload generators for tests and the
// benchmark harness: random FSPs in each Table I model class, structured
// families (chains, cycles, the Fig. 2 gallery), adversarial inputs for the
// naive partitioning method, and random star expressions.
//
// All generators are deterministic functions of the supplied *rand.Rand, so
// experiments are reproducible from a seed.
package gen

import (
	"fmt"
	"math/rand"

	"ccs/internal/expr"
	"ccs/internal/fsp"
)

// actionNames returns k observable action names: a, b, c, ...
func actionNames(k int) []string {
	names := make([]string, k)
	for i := range names {
		names[i] = string(rune('a' + i%26))
		if i >= 26 {
			names[i] = fmt.Sprintf("a%d", i)
		}
	}
	return names
}

// Random returns a random general FSP: states states, approximately arcs
// transitions over numActions observable actions, with each arc being a tau
// move with probability tauFrac, and each state accepting with probability
// 1/2.
func Random(rng *rand.Rand, states, arcs, numActions int, tauFrac float64) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("rand-%d-%d", states, arcs))
	names := actionNames(numActions)
	for _, n := range names {
		b.Action(n)
	}
	b.AddStates(states)
	for i := 0; i < arcs; i++ {
		from := fsp.State(rng.Intn(states))
		to := fsp.State(rng.Intn(states))
		if rng.Float64() < tauFrac {
			b.ArcName(from, fsp.TauName, to)
		} else {
			b.ArcName(from, names[rng.Intn(len(names))], to)
		}
	}
	for s := 0; s < states; s++ {
		if rng.Intn(2) == 0 {
			b.Accept(fsp.State(s))
		}
	}
	return b.MustBuild()
}

// RandomRestricted returns a random restricted observable FSP (every state
// accepting, no tau moves).
func RandomRestricted(rng *rand.Rand, states, arcs, numActions int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("rrand-%d-%d", states, arcs))
	names := actionNames(numActions)
	for _, n := range names {
		b.Action(n)
	}
	b.AddStates(states)
	for i := 0; i < arcs; i++ {
		b.ArcName(
			fsp.State(rng.Intn(states)),
			names[rng.Intn(len(names))],
			fsp.State(rng.Intn(states)),
		)
	}
	for s := 0; s < states; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// RandomDeterministic returns a random deterministic FSP: exactly one
// transition per state per action, random acceptance.
func RandomDeterministic(rng *rand.Rand, states, numActions int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("det-%d", states))
	names := actionNames(numActions)
	b.AddStates(states)
	for s := 0; s < states; s++ {
		for _, n := range names {
			b.ArcName(fsp.State(s), n, fsp.State(rng.Intn(states)))
		}
		if rng.Intn(2) == 0 {
			b.Accept(fsp.State(s))
		}
	}
	return b.MustBuild()
}

// RandomTotal returns a random standard observable FSP over exactly {a, b}
// in which every state has at least one a- and one b-transition — the input
// shape required by the Lemma 4.2 reduction.
func RandomTotal(rng *rand.Rand, states, extraArcs int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("total-%d", states))
	names := []string{"a", "b"}
	b.AddStates(states)
	for s := 0; s < states; s++ {
		b.ArcName(fsp.State(s), "a", fsp.State(rng.Intn(states)))
		b.ArcName(fsp.State(s), "b", fsp.State(rng.Intn(states)))
		if rng.Intn(2) == 0 {
			b.Accept(fsp.State(s))
		}
	}
	for i := 0; i < extraArcs; i++ {
		b.ArcName(
			fsp.State(rng.Intn(states)),
			names[rng.Intn(2)],
			fsp.State(rng.Intn(states)),
		)
	}
	return b.MustBuild()
}

// RandomTree returns a random restricted finite tree with the given number
// of states (>= 1) over numActions actions; each non-root state attaches
// under a uniformly chosen earlier state.
func RandomTree(rng *rand.Rand, states, numActions int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("tree-%d", states))
	names := actionNames(numActions)
	b.AddStates(states)
	for s := 1; s < states; s++ {
		parent := fsp.State(rng.Intn(s))
		b.ArcName(parent, names[rng.Intn(len(names))], fsp.State(s))
	}
	for s := 0; s < states; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// Chain returns the r.o.u. process a^n: a chain of n transitions with every
// state accepting.
func Chain(n int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("chain-%d", n))
	b.AddStates(n + 1)
	for i := 0; i < n; i++ {
		b.ArcName(fsp.State(i), "a", fsp.State(i+1))
	}
	for s := 0; s <= n; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// Cycle returns the r.o.u. total cycle of n states.
func Cycle(n int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("cycle-%d", n))
	b.AddStates(n)
	for i := 0; i < n; i++ {
		b.ArcName(fsp.State(i), "a", fsp.State((i+1)%n))
	}
	for s := 0; s < n; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// SplitterChain returns the worst-case family for the naive partitioning
// method (Lemma 3.2 tightness): a unary chain in which each refinement
// round splits off exactly one state, forcing n rounds of O(n + m) work.
func SplitterChain(n int) *fsp.FSP {
	return Chain(n)
}

// RandomExpr returns a random star expression with the given number of
// operator nodes over numActions symbols.
func RandomExpr(rng *rand.Rand, ops, numActions int) expr.Expr {
	names := actionNames(numActions)
	var build func(int) expr.Expr
	build = func(k int) expr.Expr {
		if k <= 0 {
			if rng.Intn(8) == 0 {
				return expr.Empty{}
			}
			return expr.Sym{Name: names[rng.Intn(len(names))]}
		}
		switch rng.Intn(3) {
		case 0:
			l := rng.Intn(k)
			return expr.Union{L: build(l), R: build(k - 1 - l)}
		case 1:
			l := rng.Intn(k)
			return expr.Concat{L: build(l), R: build(k - 1 - l)}
		default:
			return expr.Star{Sub: build(k - 1)}
		}
	}
	return build(ops)
}
