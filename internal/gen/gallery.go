package gen

import "ccs/internal/fsp"

// GalleryPair is one exhibit of the Fig. 2 gallery: a pair of r.o.u.
// processes together with the expected verdict under each equivalence
// notion of Table II.
type GalleryPair struct {
	Name        string
	P, Q        *fsp.FSP
	Trace       bool // ≈_1: language equivalence
	Failure     bool // ≡: failure equivalence
	Weak        bool // ≈: observational equivalence
	Description string
}

// Fig2Gallery instantiates the paper's Fig. 2 programme — r.o.u. FSPs
// separating the equivalence notions pairwise — with concrete processes
// witnessing each strict inclusion of Proposition 2.2.3:
//
//	≈  ⊊  ≡  ⊊  ≈_1   (on restricted processes)
func Fig2Gallery() []GalleryPair {
	return []GalleryPair{
		{
			Name:        "identical",
			P:           Chain(2),
			Q:           Chain(2),
			Trace:       true,
			Failure:     true,
			Weak:        true,
			Description: "a·a vs a·a: equivalent under every notion",
		},
		{
			Name:        "trace-only",
			P:           Chain(2),
			Q:           deadBranch(),
			Trace:       true,
			Failure:     false,
			Weak:        false,
			Description: "a·a vs a·a + a: same traces, but the right process can deadlock after one a (refusal difference)",
		},
		{
			Name:        "failure-not-weak",
			P:           twoChains(),
			Q:           twoChainsPlusMixed(),
			Trace:       true,
			Failure:     true,
			Weak:        false,
			Description: "a³+a² vs a³+a²+a(a+a²): identical per-trace refusals, but the extra branch's derivative mixes dead and live futures, breaking ≈_2",
		},
		{
			Name:        "different-traces",
			P:           Chain(1),
			Q:           Chain(2),
			Trace:       false,
			Failure:     false,
			Weak:        false,
			Description: "a vs a·a: separated already by ≈_1",
		},
	}
}

// deadBranch is a·a + a: after one a the process may be committed to a dead
// end.
func deadBranch() *fsp.FSP {
	b := fsp.NewBuilder("aa+a")
	b.AddStates(4)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "a", 2)
	b.ArcName(0, "a", 3)
	for s := fsp.State(0); s < 4; s++ {
		b.Accept(s)
	}
	return b.MustBuild()
}

// twoChains is a³ + a².
func twoChains() *fsp.FSP {
	b := fsp.NewBuilder("a3+a2")
	b.AddStates(6)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "a", 2)
	b.ArcName(2, "a", 3)
	b.ArcName(0, "a", 4)
	b.ArcName(4, "a", 5)
	for s := fsp.State(0); s < 6; s++ {
		b.Accept(s)
	}
	return b.MustBuild()
}

// twoChainsPlusMixed is a³ + a² + a(a + a²): the extra a-derivative has
// both a dead and a live continuation after one more a.
func twoChainsPlusMixed() *fsp.FSP {
	b := fsp.NewBuilder("a3+a2+a(a+a2)")
	b.AddStates(10)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "a", 2)
	b.ArcName(2, "a", 3)
	b.ArcName(0, "a", 4)
	b.ArcName(4, "a", 5)
	b.ArcName(0, "a", 6)
	b.ArcName(6, "a", 7)
	b.ArcName(6, "a", 8)
	b.ArcName(8, "a", 9)
	for s := fsp.State(0); s < 10; s++ {
		b.Accept(s)
	}
	return b.MustBuild()
}
