package gen

import (
	"ccs/internal/compose"
	"ccs/internal/fsp"
)

// This file generates known-defective networks for the static-analysis
// pass (internal/vet): one exhibit per diagnostic code, each wired so that
// exactly that one code fires, plus a clean network as the negative
// control. The exhibits are the in-process twins of the descriptions under
// examples/vet/ and the ground truth for the vet unit, differential, CLI
// and server tests.

// VetGalleryEntry is one exhibit of the defect gallery: a network, an
// optional spec, and the exact diagnostic codes vet.Network must report —
// each exactly once, in any order.
type VetGalleryEntry struct {
	Name        string
	Net         *compose.Network
	Spec        *fsp.FSP
	Codes       []string
	Description string
}

// loopProc builds the common gallery shape: a cycle of states threading
// the given action names in order, every state accepting.
func loopProc(name string, actions ...string) *fsp.FSP {
	b := fsp.NewBuilder(name)
	n := len(actions)
	b.AddStates(n)
	for i, act := range actions {
		b.ArcName(fsp.State(i), act, fsp.State((i+1)%n))
	}
	for s := 0; s < n; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// DeadSyncNetwork wires a handshake that can never fire: the sender emits
// "a'" (then works on "x" forever) but no other component ever performs
// "a", so hiding "a" restricts a channel with only one side present.
func DeadSyncNetwork() *compose.Network {
	sender := loopProc("sender", "a'", "x")
	noise := loopProc("noise", "y")
	return compose.New("dead-sync", sender, noise).Hide("a")
}

// RestrictionSinkNetwork restricts away everything a component can do:
// "blocked" only performs "c", "c" is hidden, and no other component
// carries "c'", so blocked contributes only deadlock. The dead channel
// itself is not reported separately — the sink is the more specific
// finding.
func RestrictionSinkNetwork() *compose.Network {
	blocked := loopProc("blocked", "c")
	free := loopProc("free", "d")
	return compose.New("restriction-sink", blocked, free).Hide("c")
}

// RelabelCollisionNetwork maps two distinct actions of one component onto
// a single name, merging their handshakes: ab[a=c, b=c].
func RelabelCollisionNetwork() *compose.Network {
	ab := loopProc("ab", "a", "b")
	net := &compose.Network{Name: "relabel-collision"}
	net.Add(ab, map[string]string{"a": "c", "b": "c"})
	return net
}

// RelabelRestrictedNetwork relabels a restricted channel: component
// "mapper" renames its "c" to "d" while the network hides "c", so the
// restriction (applied after relabeling) no longer reaches the mapper —
// the (P\L)[f] vs (P[f])\L mix-up. The A|B pair keeps channel c genuinely
// alive so no dead-sync fires alongside.
func RelabelRestrictedNetwork() *compose.Network {
	a := loopProc("a-side", "c", "e")
	b := loopProc("b-side", "c'")
	mapper := loopProc("mapper", "c")
	net := compose.New("relabel-restricted", a, b)
	net.Add(mapper, map[string]string{"c": "d"})
	return net.Hide("c")
}

// SortMismatchPair returns a network and a spec whose sorts disagree: the
// spec performs "c", which no component of the network carries — trivially
// inequivalent for every trace-containing relation.
func SortMismatchPair() (*compose.Network, *fsp.FSP) {
	net := compose.New("sort-mismatch", loopProc("ab", "a", "b"))
	spec := loopProc("abc", "a", "b", "c")
	return net, spec
}

// TauDivergenceNetwork has a component that can wander into a tau-cycle
// away from its root (0 -a-> 1 -tau-> 2 -tau-> 1): it diverges after "a",
// which ≈ and ≈ᶜ are blind to.
func TauDivergenceNetwork() *compose.Network {
	b := fsp.NewBuilder("spin")
	b.AddStates(3)
	b.ArcName(0, "a", 1)
	b.ArcName(1, fsp.TauName, 2)
	b.ArcName(2, fsp.TauName, 1)
	for s := 0; s < 3; s++ {
		b.Accept(fsp.State(s))
	}
	return compose.New("tau-divergence", b.MustBuild())
}

// UnguardedStartNetwork has a component whose start state lies on a
// tau-cycle — the FSP image of unguarded recursion X = X + a.b.X. The
// more generic tau-divergence finding is suppressed in its favor.
func UnguardedStartNetwork() *compose.Network {
	b := fsp.NewBuilder("unguarded")
	b.AddStates(2)
	b.ArcName(0, fsp.TauName, 0)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "b", 0)
	b.Accept(0)
	b.Accept(1)
	return compose.New("unguarded-start", b.MustBuild())
}

// UndefinedChannelNetwork hides a channel no component carries: hide q
// over a component speaking only a and b — the usual shape of a typo'd
// wiring.
func UndefinedChannelNetwork() *compose.Network {
	return compose.New("undefined-channel", loopProc("ab", "a", "b")).Hide("q")
}

// GhostVectorNetwork attaches a synchronization rule with a ghost part:
// the table demands a rendezvous of "ping" with "vote", but no component
// ever performs "vote" — the vector can never fire.
func GhostVectorNetwork() *compose.Network {
	ping := loopProc("pinger", "ping")
	pong := loopProc("ponger", "pong")
	return compose.New("ghost-vector", ping, pong).AddSync("decide", "ping", "vote")
}

// DeficitVectorNetwork demands two "v" parts when only one component
// carries "v": a rendezvous takes one part per distinct component, so the
// rule fails the parts-to-components matching.
func DeficitVectorNetwork() *compose.Network {
	v := loopProc("voter", "v")
	w := loopProc("other", "w")
	return compose.New("deficit-vector", v, w).AddSync("go", "v", "v")
}

// PrunedVectorNetwork hides a rule's visible result: restriction prunes
// the whole vector at composition time, almost always a mis-wiring of
// "hide the parts" as "hide the result". The hide itself is not an
// undefined-channel — the sync table speaks for the name.
func PrunedVectorNetwork() *compose.Network {
	v1 := loopProc("voter1", "v")
	v2 := loopProc("voter2", "v")
	return compose.New("pruned-vector", v1, v2).AddSync("go", "v", "v").Hide("go")
}

// VectorCleanNetwork is the sync-table negative control: three voters
// rendezvous three-way on the hidden "v" with an internal result. No
// pairwise handshake on "v" is possible (no co-name anywhere), but the
// live vector keeps the channel and the components alive — neither
// dead-sync nor restriction-sink may fire.
func VectorCleanNetwork() *compose.Network {
	net := compose.New("vector-clean",
		loopProc("voter1", "v"), loopProc("voter2", "v"), loopProc("voter3", "v"))
	return net.AddSync("", "v", "v", "v").Hide("v")
}

// CleanNetwork is the negative control: a live handshake on the hidden
// channel "a" between a sender and a receiver that each keep an observable
// action, no relabelings, no divergence. vet.Network must report nothing.
func CleanNetwork() *compose.Network {
	sender := loopProc("sender", "a'", "x")
	receiver := loopProc("receiver", "a", "y")
	return compose.New("clean", sender, receiver).Hide("a")
}

// VetGallery returns the defect exhibits, one per diagnostic code plus the
// clean control, in catalogue order. Codes lists what vet.Network must
// report — each exactly once.
func VetGallery() []VetGalleryEntry {
	sortNet, sortSpec := SortMismatchPair()
	return []VetGalleryEntry{
		{
			Name:        "dead-sync",
			Net:         DeadSyncNetwork(),
			Codes:       []string{"dead-sync"},
			Description: "a restricted channel whose receive side occurs in no component",
		},
		{
			Name:        "restriction-sink",
			Net:         RestrictionSinkNetwork(),
			Codes:       []string{"restriction-sink"},
			Description: "a component with every observable action restricted away",
		},
		{
			Name:        "relabel-collision",
			Net:         RelabelCollisionNetwork(),
			Codes:       []string{"relabel-collision"},
			Description: "two distinct actions relabeled onto one name",
		},
		{
			Name:        "relabel-restricted",
			Net:         RelabelRestrictedNetwork(),
			Codes:       []string{"relabel-restricted"},
			Description: "a relabeling whose source channel the network hides",
		},
		{
			Name:        "sort-mismatch",
			Net:         sortNet,
			Spec:        sortSpec,
			Codes:       []string{"sort-mismatch"},
			Description: "the spec performs an action the network can never perform",
		},
		{
			Name:        "tau-divergence",
			Net:         TauDivergenceNetwork(),
			Codes:       []string{"tau-divergence"},
			Description: "a reachable tau-cycle away from the root",
		},
		{
			Name:        "unguarded-start",
			Net:         UnguardedStartNetwork(),
			Codes:       []string{"unguarded-start"},
			Description: "the start state itself lies on a tau-cycle",
		},
		{
			Name:        "undefined-channel",
			Net:         UndefinedChannelNetwork(),
			Codes:       []string{"undefined-channel"},
			Description: "a hide directive naming a channel no component carries",
		},
		{
			Name:        "unsatisfiable-vector-ghost",
			Net:         GhostVectorNetwork(),
			Codes:       []string{"unsatisfiable-vector"},
			Description: "a sync rule with a part no component ever performs",
		},
		{
			Name:        "unsatisfiable-vector-deficit",
			Net:         DeficitVectorNetwork(),
			Codes:       []string{"unsatisfiable-vector"},
			Description: "a sync rule with more parts than components able to supply them",
		},
		{
			Name:        "unsatisfiable-vector-pruned",
			Net:         PrunedVectorNetwork(),
			Codes:       []string{"unsatisfiable-vector"},
			Description: "a sync rule whose visible result the restriction prunes",
		},
		{
			Name:        "vector-clean",
			Net:         VectorCleanNetwork(),
			Codes:       nil,
			Description: "a live three-way rendezvous on a hidden channel with no findings",
		},
		{
			Name:        "clean",
			Net:         CleanNetwork(),
			Codes:       nil,
			Description: "a live handshake network with no findings",
		},
	}
}
