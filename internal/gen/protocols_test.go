package gen_test

import (
	"testing"

	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/gen"
)

// TestProtocolGalleryVerdicts is the gallery's ground truth: every
// expected ≈ verdict is differentially verified against the naive flat
// decider (compose the whole product, saturate, partition) — the oracle
// the minimize-then-compose and on-the-fly pipelines are later pinned to.
func TestProtocolGalleryVerdicts(t *testing.T) {
	for _, e := range gen.ProtocolGallery() {
		flat, err := e.Net.FSP()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		got, err := core.WeakEquivalent(flat, e.Spec)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if got != e.Weak {
			t.Errorf("%s: flat ≈ verdict %v, gallery expects %v", e.Name, got, e.Weak)
		}
	}
}

// TestProtocolGalleryShape pins the gallery's structural promises: names
// are unique, positives and negatives both present, every protocol family
// except the self-stabilizing ring carries a sync table, and the quorum
// rendezvous is sized 2f+1.
func TestProtocolGalleryShape(t *testing.T) {
	gallery := gen.ProtocolGallery()
	if len(gallery) < 8 {
		t.Fatalf("gallery has %d entries, want at least 8", len(gallery))
	}
	names := map[string]bool{}
	pos, neg := 0, 0
	for _, e := range gallery {
		if names[e.Name] {
			t.Errorf("duplicate gallery name %q", e.Name)
		}
		names[e.Name] = true
		if e.Weak {
			pos++
		} else {
			neg++
		}
		if e.Description == "" {
			t.Errorf("%s: no description", e.Name)
		}
		if err := e.Net.Validate(); err != nil {
			t.Errorf("%s: invalid network: %v", e.Name, err)
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("gallery needs positives and negatives, have %d/%d", pos, neg)
	}
	for _, nm := range []string{"leader-ring-5", "2pc-3-commit", "bq-4-1", "stab-ring-5"} {
		if !names[nm] {
			t.Errorf("gallery lacks the %s exhibit", nm)
		}
	}
	bq := gen.ByzantineQuorum(7, 2, 2)
	if len(bq.Sync) != 1 || len(bq.Sync[0].Parts) != 5 {
		t.Fatalf("ByzantineQuorum(7,2,2) rendezvous has %d rules / %d parts, want 1 rule of 2f+1=5 parts", len(bq.Sync), len(bq.Sync[0].Parts))
	}
	if len(gen.StabilizingTokenRing(5).Sync) != 0 {
		t.Error("the self-stabilizing ring should need no sync table (pairwise absorption)")
	}
}

// TestStabilizationMerges pins the self-stabilization mechanism itself:
// from the corrupted two-token start the ring reaches the canonical
// single-token configuration (the flat product of the corrupted ring is
// weakly equivalent to a ring started with one token), while the sinkhole
// ring is not even equivalent to its own healthy shape.
func TestStabilizationMerges(t *testing.T) {
	corrupted, err := gen.StabilizingTokenRing(4).FSP()
	if err != nil {
		t.Fatal(err)
	}
	// A healthy single-token instance: same stations, one holder.
	healthy, err := gen.TokenRing(4).FSP()
	if err != nil {
		t.Fatal(err)
	}
	eq, err := core.WeakEquivalent(corrupted, healthy)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("the corrupted two-token ring does not stabilize to the single-token behaviour")
	}
}

// TestQuorumThresholdSharp: the f<n/3 bound is sharp in the gallery
// generator — with exactly f faults the quorum still assembles, with f+1
// it never does (no "decide" in the whole product).
func TestQuorumThresholdSharp(t *testing.T) {
	hasDecide := func(net interface{ FSP() (*fsp.FSP, error) }) bool {
		f, err := net.FSP()
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < f.NumStates(); s++ {
			for _, a := range f.Arcs(fsp.State(s)) {
				if f.Alphabet().Name(a.Act) == "decide" {
					return true
				}
			}
		}
		return false
	}
	if !hasDecide(gen.ByzantineQuorum(4, 1, 1)) {
		t.Error("bq(4,1,1): quorum of 3 honest replicas cannot decide")
	}
	if hasDecide(gen.ByzantineQuorum(4, 1, 2)) {
		t.Error("bq(4,1,2): 2 honest replicas assembled a quorum of 3")
	}
	if !hasDecide(gen.ByzantineQuorum(7, 2, 2)) {
		t.Error("bq(7,2,2): quorum of 5 honest replicas cannot decide")
	}
}
