package gen

import (
	"math/rand"
	"testing"

	"ccs/internal/core"
	"ccs/internal/failures"
	"ccs/internal/fsp"
	"ccs/internal/kequiv"
)

func TestGeneratorsProduceDeclaredClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	t.Run("restricted", func(t *testing.T) {
		f := RandomRestricted(rng, 10, 20, 2)
		cls := fsp.Classify(f)
		if !cls.Restricted || !cls.Observable {
			t.Errorf("not restricted observable: %+v", cls)
		}
	})
	t.Run("deterministic", func(t *testing.T) {
		f := RandomDeterministic(rng, 10, 3)
		if !fsp.Classify(f).Deterministic {
			t.Errorf("not deterministic")
		}
	})
	t.Run("tree", func(t *testing.T) {
		f := RandomTree(rng, 12, 2)
		cls := fsp.Classify(f)
		if !cls.Is(fsp.FiniteTree) {
			t.Errorf("not a finite tree: %+v", cls)
		}
	})
	t.Run("total", func(t *testing.T) {
		f := RandomTotal(rng, 8, 5)
		cls := fsp.Classify(f)
		if !cls.Standard || !cls.Observable {
			t.Errorf("not standard observable: %+v", cls)
		}
		a, _ := f.Alphabet().Lookup("a")
		b, _ := f.Alphabet().Lookup("b")
		for s := 0; s < f.NumStates(); s++ {
			if !f.HasAction(fsp.State(s), a) || !f.HasAction(fsp.State(s), b) {
				t.Errorf("state %d not total", s)
			}
		}
	})
	t.Run("general with tau", func(t *testing.T) {
		f := Random(rng, 20, 60, 2, 0.5)
		if f.NumStates() != 20 {
			t.Errorf("state count wrong")
		}
	})
	t.Run("chain and cycle", func(t *testing.T) {
		if !fsp.Classify(Chain(4)).Is(fsp.RestrictedObservableUnary) {
			t.Errorf("chain not r.o.u.")
		}
		if !fsp.Classify(Cycle(4)).Is(fsp.RestrictedObservableUnary) {
			t.Errorf("cycle not r.o.u.")
		}
	})
}

func TestGeneratorsDeterministicFromSeed(t *testing.T) {
	f1 := Random(rand.New(rand.NewSource(99)), 15, 40, 3, 0.2)
	f2 := Random(rand.New(rand.NewSource(99)), 15, 40, 3, 0.2)
	if fsp.FormatString(f1) != fsp.FormatString(f2) {
		t.Errorf("same seed produced different processes")
	}
}

func TestRandomExprParses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		e := RandomExpr(rng, 1+rng.Intn(10), 2)
		if e == nil {
			t.Fatal("nil expression")
		}
		if e.Length() <= 0 {
			t.Errorf("bad length for %v", e)
		}
	}
}

func TestFig2GalleryVerdicts(t *testing.T) {
	// The gallery is the executable form of Fig. 2: every declared verdict
	// must be confirmed by the actual deciders.
	for _, pair := range Fig2Gallery() {
		t.Run(pair.Name, func(t *testing.T) {
			for _, f := range []*fsp.FSP{pair.P, pair.Q} {
				cls := fsp.Classify(f)
				if !cls.Is(fsp.RestrictedObservableUnary) {
					t.Fatalf("%s not r.o.u.", f.Name())
				}
			}
			trace, err := kequiv.Equivalent(pair.P, pair.Q, 1)
			if err != nil {
				t.Fatal(err)
			}
			if trace != pair.Trace {
				t.Errorf("≈_1 = %v, want %v", trace, pair.Trace)
			}
			fail, _, err := failures.Equivalent(pair.P, pair.Q)
			if err != nil {
				t.Fatal(err)
			}
			if fail != pair.Failure {
				t.Errorf("≡ = %v, want %v", fail, pair.Failure)
			}
			weak, err := core.WeakEquivalent(pair.P, pair.Q)
			if err != nil {
				t.Fatal(err)
			}
			if weak != pair.Weak {
				t.Errorf("≈ = %v, want %v", weak, pair.Weak)
			}
		})
	}
}

func TestGalleryWitnessesStrictInclusions(t *testing.T) {
	// Proposition 2.2.3's chain is strict: the gallery must contain a
	// trace-equal failure-different pair and a failure-equal weak-different
	// pair.
	var sawTraceOnly, sawFailureNotWeak bool
	for _, pair := range Fig2Gallery() {
		if pair.Trace && !pair.Failure {
			sawTraceOnly = true
		}
		if pair.Failure && !pair.Weak {
			sawFailureNotWeak = true
		}
	}
	if !sawTraceOnly {
		t.Error("gallery lacks a ≈_1-but-not-≡ witness")
	}
	if !sawFailureNotWeak {
		t.Error("gallery lacks a ≡-but-not-≈ witness")
	}
}
