package gen

import (
	"fmt"
	"math/rand"

	"ccs/internal/compose"
	"ccs/internal/fsp"
)

// This file generates networks of communicating processes for the
// compositional pipeline (internal/compose, engine.CheckNetwork) and the
// E17 benchmark: relay pipelines whose flat product is exponential in the
// stage count while every component minimizes to two states, plus a lossy
// variant as a negative control and a seeded random-network generator for
// differential testing.

// BufferCell returns the generic one-place relay cell: it accepts a
// message on "in", churns through the given number of internal tau steps
// (a retransmission loop unwound), and hands the message on by emitting
// the co-action "out'". Every state is accepting (the r.o.u. convention),
// so extensions play no role in the product. Modulo ≈ the cell is the
// two-state buffer in·out'·(repeat): the whole churn chain collapses,
// which is exactly what makes minimize-then-compose collapse the product.
func BufferCell(churn int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("cell-%d", churn))
	n := churn + 2
	b.AddStates(n)
	b.ArcName(0, "in", 1)
	for i := 1; i <= churn; i++ {
		b.ArcName(fsp.State(i), fsp.TauName, fsp.State(i+1))
	}
	b.ArcName(fsp.State(n-1), "out'", 0)
	for s := 0; s < n; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// LossyCell is BufferCell with a defect: from its first churn state the
// message can silently be dropped (tau back to empty). A pipeline with a
// lossy stage is not observationally equivalent to any reliable buffer —
// after an "in" it can reach a state that refuses "out" forever.
func LossyCell(churn int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("lossy-%d", churn))
	n := churn + 2
	b.AddStates(n)
	b.ArcName(0, "in", 1)
	b.ArcName(1, fsp.TauName, 0) // drop
	for i := 1; i <= churn; i++ {
		b.ArcName(fsp.State(i), fsp.TauName, fsp.State(i+1))
	}
	b.ArcName(fsp.State(n-1), "out'", 0)
	for s := 0; s < n; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// relayNetworkOf chains the given cells into a pipeline: cell i is
// relabeled to read from channel c<i-1> and write to c<i>, the internal
// channels are hidden, and the ends stay visible as "c0" (input) and
// "c<n>'" (output).
func relayNetworkOf(name string, cells []*fsp.FSP) *compose.Network {
	n := len(cells)
	net := &compose.Network{Name: name}
	for i, cell := range cells {
		net.Add(cell, map[string]string{
			"in":  fmt.Sprintf("c%d", i),
			"out": fmt.Sprintf("c%d", i+1),
		})
	}
	for i := 1; i < n; i++ {
		net.Hide(fmt.Sprintf("c%d", i))
	}
	return net
}

// RelayNetwork returns the n-stage relay pipeline over BufferCell(churn):
//
//	(Cell[c0/in, c1/out] | Cell[c1/in, c2/out] | ... ) \ {c1..c<n-1>}
//
// Its flat product has up to (churn+2)^n reachable states; the ≈ᶜ-minimized
// components compose to at most 2^n, and the whole thing is
// observationally equivalent to CounterSpec(n) — the classic law that a
// chain of n one-place buffers is an n-place buffer.
func RelayNetwork(n, churn int) *compose.Network {
	cell := BufferCell(churn)
	cells := make([]*fsp.FSP, n)
	for i := range cells {
		cells[i] = cell // self-composition: one shared component instance
	}
	return relayNetworkOf(fmt.Sprintf("relay-%d-%d", n, churn), cells)
}

// LossyRelayNetwork is RelayNetwork with the middle stage replaced by a
// LossyCell: the negative control. It is NOT ≈ CounterSpec(n).
func LossyRelayNetwork(n, churn int) *compose.Network {
	cell, lossy := BufferCell(churn), LossyCell(churn)
	cells := make([]*fsp.FSP, n)
	for i := range cells {
		cells[i] = cell
	}
	cells[n/2] = lossy
	return relayNetworkOf(fmt.Sprintf("lossy-relay-%d-%d", n, churn), cells)
}

// CounterSpec returns the n-place buffer specification of RelayNetwork(n):
// a counter over states 0..n accepting "c0" while below capacity and
// emitting "c<n>'" while nonempty. All states accept.
func CounterSpec(n int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("counter-%d", n))
	b.AddStates(n + 1)
	in := "c0"
	out := fmt.Sprintf("c%d'", n)
	for kk := 0; kk < n; kk++ {
		b.ArcName(fsp.State(kk), in, fsp.State(kk+1))
	}
	for kk := 1; kk <= n; kk++ {
		b.ArcName(fsp.State(kk), out, fsp.State(kk-1))
	}
	for s := 0; s <= n; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// NetworkGalleryEntry is one exhibit of the network gallery: a process
// network, its specification, and the expected ≈ verdict.
type NetworkGalleryEntry struct {
	Name        string
	Net         *compose.Network
	Spec        *fsp.FSP
	Weak        bool
	Description string
}

// NetworkGallery returns the generated network exhibits used by the
// examples and smoke tests: relay pipelines at growing sizes (positive)
// and a lossy pipeline (negative).
func NetworkGallery() []NetworkGalleryEntry {
	var out []NetworkGalleryEntry
	for _, n := range []int{2, 3, 4} {
		out = append(out, NetworkGalleryEntry{
			Name:        fmt.Sprintf("relay-%d", n),
			Net:         RelayNetwork(n, 2),
			Spec:        CounterSpec(n),
			Weak:        true,
			Description: fmt.Sprintf("%d chained 1-place buffers ≈ a %d-place buffer", n, n),
		})
	}
	out = append(out, NetworkGalleryEntry{
		Name:        "lossy-relay-3",
		Net:         LossyRelayNetwork(3, 2),
		Spec:        CounterSpec(3),
		Weak:        false,
		Description: "a dropping middle stage breaks the buffer law",
	})
	return out
}

// RandomNetwork returns a seeded random network for differential testing:
// 2-3 random components over a small alphabet with tau moves, where later
// components may be relabeled to expose co-actions of the first (creating
// handshakes) and a random channel may be hidden. Exercises interleaving,
// synchronization, restriction and relabeling in one instance.
func RandomNetwork(rng *rand.Rand) *compose.Network {
	k := 2 + rng.Intn(2)
	net := &compose.Network{Name: fmt.Sprintf("randnet-%d", k)}
	for i := 0; i < k; i++ {
		comp := Random(rng, 2+rng.Intn(5), 3+rng.Intn(8), 3, 0.25)
		var relabel map[string]string
		if i > 0 && rng.Intn(2) == 0 {
			// Flip one action to a co-action of the first component's
			// alphabet so the pair can synchronize.
			relabel = map[string]string{"b": "a'"}
		}
		net.Add(comp, relabel)
	}
	if rng.Intn(2) == 0 {
		net.Hide("a")
	}
	if rng.Intn(4) == 0 {
		net.Hide("c")
	}
	return net
}
