package gen

import (
	"fmt"
	"math/rand"

	"ccs/internal/compose"
	"ccs/internal/fsp"
)

// This file generates networks of communicating processes for the
// compositional pipeline (internal/compose, engine.CheckNetwork) and the
// E17 benchmark: relay pipelines whose flat product is exponential in the
// stage count while every component minimizes to two states, plus a lossy
// variant as a negative control and a seeded random-network generator for
// differential testing.

// BufferCell returns the generic one-place relay cell: it accepts a
// message on "in", churns through the given number of internal tau steps
// (a retransmission loop unwound), and hands the message on by emitting
// the co-action "out'". Every state is accepting (the r.o.u. convention),
// so extensions play no role in the product. Modulo ≈ the cell is the
// two-state buffer in·out'·(repeat): the whole churn chain collapses,
// which is exactly what makes minimize-then-compose collapse the product.
func BufferCell(churn int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("cell-%d", churn))
	n := churn + 2
	b.AddStates(n)
	b.ArcName(0, "in", 1)
	for i := 1; i <= churn; i++ {
		b.ArcName(fsp.State(i), fsp.TauName, fsp.State(i+1))
	}
	b.ArcName(fsp.State(n-1), "out'", 0)
	for s := 0; s < n; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// LossyCell is BufferCell with a defect: from its first churn state the
// message can silently be dropped (tau back to empty). A pipeline with a
// lossy stage is not observationally equivalent to any reliable buffer —
// after an "in" it can reach a state that refuses "out" forever.
func LossyCell(churn int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("lossy-%d", churn))
	n := churn + 2
	b.AddStates(n)
	b.ArcName(0, "in", 1)
	b.ArcName(1, fsp.TauName, 0) // drop
	for i := 1; i <= churn; i++ {
		b.ArcName(fsp.State(i), fsp.TauName, fsp.State(i+1))
	}
	b.ArcName(fsp.State(n-1), "out'", 0)
	for s := 0; s < n; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// relayNetworkOf chains the given cells into a pipeline: cell i is
// relabeled to read from channel c<i-1> and write to c<i>, the internal
// channels are hidden, and the ends stay visible as "c0" (input) and
// "c<n>'" (output).
func relayNetworkOf(name string, cells []*fsp.FSP) *compose.Network {
	n := len(cells)
	net := &compose.Network{Name: name}
	for i, cell := range cells {
		net.Add(cell, map[string]string{
			"in":  fmt.Sprintf("c%d", i),
			"out": fmt.Sprintf("c%d", i+1),
		})
	}
	for i := 1; i < n; i++ {
		net.Hide(fmt.Sprintf("c%d", i))
	}
	return net
}

// RelayNetwork returns the n-stage relay pipeline over BufferCell(churn):
//
//	(Cell[c0/in, c1/out] | Cell[c1/in, c2/out] | ... ) \ {c1..c<n-1>}
//
// Its flat product has up to (churn+2)^n reachable states; the ≈ᶜ-minimized
// components compose to at most 2^n, and the whole thing is
// observationally equivalent to CounterSpec(n) — the classic law that a
// chain of n one-place buffers is an n-place buffer.
func RelayNetwork(n, churn int) *compose.Network {
	cell := BufferCell(churn)
	cells := make([]*fsp.FSP, n)
	for i := range cells {
		cells[i] = cell // self-composition: one shared component instance
	}
	return relayNetworkOf(fmt.Sprintf("relay-%d-%d", n, churn), cells)
}

// LossyRelayNetwork is RelayNetwork with the middle stage replaced by a
// LossyCell: the negative control. It is NOT ≈ CounterSpec(n).
func LossyRelayNetwork(n, churn int) *compose.Network {
	cell, lossy := BufferCell(churn), LossyCell(churn)
	cells := make([]*fsp.FSP, n)
	for i := range cells {
		cells[i] = cell
	}
	cells[n/2] = lossy
	return relayNetworkOf(fmt.Sprintf("lossy-relay-%d-%d", n, churn), cells)
}

// CounterSpec returns the n-place buffer specification of RelayNetwork(n):
// a counter over states 0..n accepting "c0" while below capacity and
// emitting "c<n>'" while nonempty. All states accept.
func CounterSpec(n int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("counter-%d", n))
	b.AddStates(n + 1)
	in := "c0"
	out := fmt.Sprintf("c%d'", n)
	for kk := 0; kk < n; kk++ {
		b.ArcName(fsp.State(kk), in, fsp.State(kk+1))
	}
	for kk := 1; kk <= n; kk++ {
		b.ArcName(fsp.State(kk), out, fsp.State(kk-1))
	}
	for s := 0; s <= n; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// tokenRingStation builds one station of the token ring. A station holds
// the token (start at state 0: it can "work", then hand the token on by
// emitting "send'") or idles (start at the churn-cycle base: it spins an
// internal tau refresh loop of length churn and accepts the token on
// "recv" only at the cycle base). The idle churn is what makes the flat
// ring product exponential — n-1 stations churn independently — while
// every station ≈ᶜ-minimizes to three states, so the minimized product
// stays linear in n. The buggy variant can silently drop the token
// instead of passing it (tau from the passing state back to idle),
// deadlocking the whole ring.
func tokenRingStation(name string, churn int, buggy, holder bool) *fsp.FSP {
	b := fsp.NewBuilder(name)
	n := 2 + churn // 0: work pending, 1: pass pending, 2..2+churn-1: idle cycle
	b.AddStates(n)
	b.ArcName(0, "work", 1)
	b.ArcName(1, "send'", 2)
	if buggy {
		b.ArcName(1, fsp.TauName, 2) // drop the token instead of passing it
	}
	for i := 0; i < churn; i++ {
		b.ArcName(fsp.State(2+i), fsp.TauName, fsp.State(2+(i+1)%churn))
	}
	b.ArcName(2, "recv", 0)
	for s := 0; s < n; s++ {
		b.Accept(fsp.State(s))
	}
	if !holder {
		b.SetStart(2)
	}
	return b.MustBuild()
}

// tokenRingChurn is the idle refresh-loop length of the generated rings:
// the flat product of TokenRing(n) has Θ(n · tokenRingChurn^(n-1))
// reachable states.
const tokenRingChurn = 3

// tokenRing assembles the ring: station i receives the token on channel
// t<i> and passes it on t<(i+1) mod n>, all token channels are hidden, and
// only "work" stays visible. Station 0 starts holding the token; in the
// buggy variant the station halfway around the ring may drop it.
func tokenRing(name string, n int, buggy bool) *compose.Network {
	holder := tokenRingStation("station-holder", tokenRingChurn, false, true)
	idle := tokenRingStation("station-idle", tokenRingChurn, false, false)
	var dropper *fsp.FSP
	if buggy {
		dropper = tokenRingStation("station-buggy", tokenRingChurn, true, false)
	}
	net := &compose.Network{Name: name}
	for i := 0; i < n; i++ {
		cell := idle
		if i == 0 {
			cell = holder
		} else if buggy && i == n/2 {
			cell = dropper
		}
		net.Add(cell, map[string]string{
			"recv": fmt.Sprintf("t%d", i),
			"send": fmt.Sprintf("t%d", (i+1)%n),
		})
		net.Hide(fmt.Sprintf("t%d", i))
	}
	return net
}

// TokenRing returns the n-station token ring (n >= 2): exactly one
// station holds the token, works, and passes it around over hidden
// channels, while the idle stations churn internal tau loops. The flat
// product is exponential in n, yet the ring is observationally equivalent
// to TokenRingSpec — an endless stream of "work".
func TokenRing(n int) *compose.Network {
	return tokenRing(fmt.Sprintf("token-ring-%d", n), n, false)
}

// BuggyTokenRing is TokenRing with the station halfway around the ring
// replaced by one that can silently drop the token, after which no
// station ever works again: the ring is NOT ≈ TokenRingSpec, and the
// mismatch is reachable within a trace linear in n — the early-exit
// stress case for the on-the-fly checker.
func BuggyTokenRing(n int) *compose.Network {
	return tokenRing(fmt.Sprintf("buggy-token-ring-%d", n), n, true)
}

// TokenRingSpec is the token ring's specification: an endless stream of
// "work" (one state, accepting, deterministic and tau-free — eligible for
// the direct on-the-fly game).
func TokenRingSpec() *fsp.FSP {
	b := fsp.NewBuilder("work-loop")
	b.AddStates(1)
	b.ArcName(0, "work", 0)
	b.Accept(0)
	return b.MustBuild()
}

// NondetCounterSpec is a specification weakly equivalent to
// CounterSpec(n) — the n-place buffer — written the way real specs often
// are: nondeterministic and tau-bearing. Accepting a message either
// lands directly on the next level or detours through a tau "settling"
// state (a nondeterministic choice on "c0"), and the empty buffer idles
// through a tau refresh loop. The direct on-the-fly game rejects such a
// spec outright; the determinized subset game decides it, because the
// nondeterminism is inessential — every derivative of a trace is weakly
// equivalent (the spec is determinate), so every subset the game interns
// is homogeneous.
//
// Layout: states 0..n are the levels, n+k is the settling twin of level
// k (k = 1..n, reachable by "c0" from level k-1, tau to level k), and
// 2n+1 is the idle refresh twin of level 0. All states accept.
func NondetCounterSpec(n int) *fsp.FSP {
	b := fsp.NewBuilder(fmt.Sprintf("nondet-counter-%d", n))
	b.AddStates(2*n + 2)
	in := "c0"
	out := fmt.Sprintf("c%d'", n)
	settle := func(k int) fsp.State { return fsp.State(n + k) }
	idle := fsp.State(2*n + 1)
	for k := 0; k < n; k++ {
		b.ArcName(fsp.State(k), in, fsp.State(k+1))
		b.ArcName(fsp.State(k), in, settle(k+1)) // nondeterministic twin
		b.ArcName(settle(k+1), fsp.TauName, fsp.State(k+1))
	}
	for k := 1; k <= n; k++ {
		b.ArcName(fsp.State(k), out, fsp.State(k-1))
	}
	b.ArcName(0, fsp.TauName, idle)
	b.ArcName(idle, fsp.TauName, 0)
	for s := 0; s < 2*n+2; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// NondetTokenRingSpec is TokenRingSpec as a nondeterministic observer:
// "work" either stays put or detours through a tau settling state, and
// the base idles through a tau refresh loop. Weakly equivalent to
// TokenRingSpec and determinate, so the determinized on-the-fly game
// decides it where the direct game refuses.
func NondetTokenRingSpec() *fsp.FSP {
	b := fsp.NewBuilder("nondet-work-loop")
	b.AddStates(3) // 0: base, 1: settling, 2: refresh twin
	b.ArcName(0, "work", 0)
	b.ArcName(0, "work", 1) // nondeterministic twin
	b.ArcName(1, fsp.TauName, 0)
	b.ArcName(0, fsp.TauName, 2)
	b.ArcName(2, fsp.TauName, 0)
	for s := 0; s < 3; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// NetworkGalleryEntry is one exhibit of the network gallery: a process
// network, its specification, and the expected ≈ verdict.
type NetworkGalleryEntry struct {
	Name        string
	Net         *compose.Network
	Spec        *fsp.FSP
	Weak        bool
	Description string
}

// NetworkGallery returns the generated network exhibits used by the
// examples and smoke tests: relay pipelines at growing sizes (positive)
// and a lossy pipeline (negative).
func NetworkGallery() []NetworkGalleryEntry {
	var out []NetworkGalleryEntry
	for _, n := range []int{2, 3, 4} {
		out = append(out, NetworkGalleryEntry{
			Name:        fmt.Sprintf("relay-%d", n),
			Net:         RelayNetwork(n, 2),
			Spec:        CounterSpec(n),
			Weak:        true,
			Description: fmt.Sprintf("%d chained 1-place buffers ≈ a %d-place buffer", n, n),
		})
	}
	out = append(out, NetworkGalleryEntry{
		Name:        "lossy-relay-3",
		Net:         LossyRelayNetwork(3, 2),
		Spec:        CounterSpec(3),
		Weak:        false,
		Description: "a dropping middle stage breaks the buffer law",
	})
	out = append(out, NetworkGalleryEntry{
		Name:        "token-ring-6",
		Net:         TokenRing(6),
		Spec:        TokenRingSpec(),
		Weak:        true,
		Description: "a circulating token yields an endless work stream",
	})
	out = append(out, NetworkGalleryEntry{
		Name:        "buggy-token-ring-6",
		Net:         BuggyTokenRing(6),
		Spec:        TokenRingSpec(),
		Weak:        false,
		Description: "a token-dropping station silences the ring forever",
	})
	// The nondeterministic-spec family: the same networks against
	// tau-bearing, nondeterministic (but determinate) observers, which
	// the direct on-the-fly game rejects and the determinized subset
	// game decides.
	out = append(out, NetworkGalleryEntry{
		Name:        "relay-3-nondet-spec",
		Net:         RelayNetwork(3, 2),
		Spec:        NondetCounterSpec(3),
		Weak:        true,
		Description: "the buffer law against a nondeterministic buffer spec",
	})
	out = append(out, NetworkGalleryEntry{
		Name:        "lossy-relay-3-nondet-spec",
		Net:         LossyRelayNetwork(3, 2),
		Spec:        NondetCounterSpec(3),
		Weak:        false,
		Description: "a dropping stage caught by a nondeterministic spec",
	})
	out = append(out, NetworkGalleryEntry{
		Name:        "token-ring-6-nondet-spec",
		Net:         TokenRing(6),
		Spec:        NondetTokenRingSpec(),
		Weak:        true,
		Description: "the ring against a nondeterministic work observer",
	})
	out = append(out, NetworkGalleryEntry{
		Name:        "buggy-token-ring-6-nondet-spec",
		Net:         BuggyTokenRing(6),
		Spec:        NondetTokenRingSpec(),
		Weak:        false,
		Description: "the dropped token caught by a nondeterministic observer",
	})
	return out
}

// RandomNetwork returns a seeded random network for differential testing:
// 2-3 random components over a small alphabet with tau moves, where later
// components may be relabeled to expose co-actions of the first (creating
// handshakes) and a random channel may be hidden. Exercises interleaving,
// synchronization, restriction and relabeling in one instance.
func RandomNetwork(rng *rand.Rand) *compose.Network {
	k := 2 + rng.Intn(2)
	net := &compose.Network{Name: fmt.Sprintf("randnet-%d", k)}
	for i := 0; i < k; i++ {
		comp := Random(rng, 2+rng.Intn(5), 3+rng.Intn(8), 3, 0.25)
		var relabel map[string]string
		if i > 0 && rng.Intn(2) == 0 {
			// Flip one action to a co-action of the first component's
			// alphabet so the pair can synchronize.
			relabel = map[string]string{"b": "a'"}
		}
		net.Add(comp, relabel)
	}
	if rng.Intn(2) == 0 {
		net.Hide("a")
	}
	if rng.Intn(4) == 0 {
		net.Hide("c")
	}
	return net
}
