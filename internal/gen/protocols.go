package gen

import (
	"fmt"

	"ccs/internal/compose"
	"ccs/internal/fsp"
)

// This file generates the distributed-protocols gallery: networks whose
// coordination step is an n-way rendezvous (compose.SyncRule) rather than
// a pairwise handshake — leader election on a ring with unanimous
// ratification, two-phase commit with a coordinator, an f<n/3
// Byzantine-quorum vote, and a self-stabilizing token ring recovering from
// a corrupted two-token start. Each protocol comes with a small
// declarative spec and a defective variant (a station that never acks, a
// coordinator that skips a participant, more faults than the quorum
// tolerates, a station that destroys tokens), so the gallery exercises
// both full sweeps and early mismatches of the on-the-fly game on
// irregular state spaces. E23 benchmarks otf against minimize-then-compose
// on the quorum entries.

// electionStation builds one station of the ratified leader-election ring.
// A claim token circulates on hidden ring channels; the holder either
// passes it on or commits to announcing, and the announcement only goes
// through as the joint rendezvous ["announce", "ack" x (n-1)] -> "elected"
// — every other station must ratify from its idle base. After the
// rendezvous every station is done and the ring falls silent. With
// ack=false the station never ratifies: an announcement by any other
// station then freezes the ring with the token stuck at the announcer — a
// reachable silent state the spec forbids.
func electionStation(name string, holder, ack bool) *fsp.FSP {
	b := fsp.NewBuilder(name)
	// 0 holding, 1 announcing, 2 idle base, 3-4 idle churn, 5 done.
	b.AddStates(6)
	b.ArcName(0, fsp.TauName, 1) // commit to announcing
	b.ArcName(0, "send'", 2)     // or pass the claim token on
	b.ArcName(1, "announce", 5)
	b.ArcName(2, "recv", 0)
	if ack {
		b.ArcName(2, "ack", 5)
	}
	b.ArcName(2, fsp.TauName, 3)
	b.ArcName(3, fsp.TauName, 4)
	b.ArcName(4, fsp.TauName, 2)
	for s := 0; s < 6; s++ {
		b.Accept(fsp.State(s))
	}
	if !holder {
		b.SetStart(2)
	}
	return b.MustBuild()
}

// electionRing assembles n stations into the ring, with station noAck (if
// >= 0) refusing to ratify.
func electionRing(name string, n, noAck int) *compose.Network {
	holder := electionStation("candidate-holder", true, true)
	idle := electionStation("candidate-idle", false, true)
	net := &compose.Network{Name: name}
	for i := 0; i < n; i++ {
		st := idle
		if i == 0 {
			st = holder
		} else if i == noAck {
			st = electionStation("candidate-no-ack", false, false)
		}
		net.Add(st, map[string]string{
			"recv": fmt.Sprintf("e%d", i),
			"send": fmt.Sprintf("e%d", (i+1)%n),
		})
		net.Hide(fmt.Sprintf("e%d", i))
	}
	net.Hide("announce", "ack")
	parts := []string{"announce"}
	for i := 1; i < n; i++ {
		parts = append(parts, "ack")
	}
	net.AddSync("elected", parts...)
	return net
}

// ElectionRing returns the n-station ratified leader-election ring
// (n >= 2): observationally it elects exactly once — ≈ ElectionSpec.
func ElectionRing(n int) *compose.Network {
	return electionRing(fmt.Sprintf("leader-ring-%d", n), n, -1)
}

// NoAckElectionRing replaces the station halfway around the ring with one
// that never ratifies: an announcement by anyone else freezes the ring, so
// the network is NOT ≈ ElectionSpec.
func NoAckElectionRing(n int) *compose.Network {
	return electionRing(fmt.Sprintf("leader-ring-%d-no-ack", n), n, n/2)
}

// ElectionSpec is the leader election spec: exactly one "elected", then
// silence. Deterministic and tau-free — direct on-the-fly route.
func ElectionSpec() *fsp.FSP {
	b := fsp.NewBuilder("elect-once")
	b.AddStates(2)
	b.ArcName(0, "elected", 1)
	b.Accept(0).Accept(1)
	return b.MustBuild()
}

// commitParticipant builds a two-phase-commit participant that churns
// internally and then offers its fixed ballot ("yes" or "no") to the
// coordinator's rendezvous, after which it is done.
func commitParticipant(name, ballot string) *fsp.FSP {
	b := fsp.NewBuilder(name)
	// 0 voting base, 1-2 churn, 3 done.
	b.AddStates(4)
	b.ArcName(0, ballot, 3)
	b.ArcName(0, fsp.TauName, 1)
	b.ArcName(1, fsp.TauName, 2)
	b.ArcName(2, fsp.TauName, 0)
	for s := 0; s < 4; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// twoPhaseCommit builds a coordinator plus n participants, of which noVotes
// vote "no". The decision is a rendezvous: unanimous consent fires
// ["req", "yes" x yesParts] -> "commit", while any single "no" reaches the
// coordinator as ["req", "no"] -> "abort". A correct coordinator asks all
// n participants (yesParts = n); the buggy variant skips one (yesParts =
// n-1), so it can commit over a dissenting participant.
func twoPhaseCommit(name string, n, noVotes, yesParts int) *compose.Network {
	coord := fsp.NewBuilder("coordinator")
	coord.AddStates(2)
	coord.ArcName(0, "req", 1)
	coord.Accept(0).Accept(1)
	net := compose.New(name, coord.MustBuild())
	yes := commitParticipant("participant-yes", "yes")
	no := commitParticipant("participant-no", "no")
	for i := 0; i < n; i++ {
		if i < n-noVotes {
			net.Add(yes, nil)
		} else {
			net.Add(no, nil)
		}
	}
	commit := []string{"req"}
	for i := 0; i < yesParts; i++ {
		commit = append(commit, "yes")
	}
	net.AddSync("commit", commit...)
	net.AddSync("abort", "req", "no")
	net.Hide("req", "yes", "no")
	return net
}

// TwoPhaseCommit returns the correct protocol over n participants of which
// noVotes dissent: ≈ DecisionSpec("commit") when noVotes == 0 and
// ≈ DecisionSpec("abort") otherwise (the all-yes rendezvous is then
// unsatisfiable, which `ccs vet` reports statically).
func TwoPhaseCommit(n, noVotes int) *compose.Network {
	return twoPhaseCommit(fmt.Sprintf("2pc-%d-%d", n, noVotes), n, noVotes, n)
}

// BuggyTwoPhaseCommit returns a protocol violation: the coordinator's
// commit rendezvous skips one participant, and that participant votes no.
// The network can then both commit and abort, so it is NOT ≈
// DecisionSpec("abort").
func BuggyTwoPhaseCommit(n int) *compose.Network {
	return twoPhaseCommit(fmt.Sprintf("2pc-%d-buggy", n), n, 1, n-1)
}

// DecisionSpec is the two-phase-commit spec: exactly one decision —
// "commit" or "abort" — then silence.
func DecisionSpec(decision string) *fsp.FSP {
	b := fsp.NewBuilder(decision + "-once")
	b.AddStates(2)
	b.ArcName(0, decision, 1)
	b.Accept(0).Accept(1)
	return b.MustBuild()
}

// quorumReplica builds one replica of the Byzantine-quorum vote. Replicas
// gossip a token around a hidden ring (the irregular bulk that makes the
// flat product exponential); an honest replica additionally offers "vote"
// from its idle base, forever. A faulty replica is crash-silent: it keeps
// the gossip ring alive but never votes.
func quorumReplica(name string, honest, holder bool) *fsp.FSP {
	b := fsp.NewBuilder(name)
	// 0 base, 1 holding the gossip token, 2-3 churn.
	b.AddStates(4)
	if honest {
		b.ArcName(0, "vote", 0)
	}
	b.ArcName(0, "recv", 1)
	b.ArcName(0, fsp.TauName, 2)
	b.ArcName(1, "send'", 0)
	b.ArcName(2, fsp.TauName, 3)
	b.ArcName(3, fsp.TauName, 0)
	for s := 0; s < 4; s++ {
		b.Accept(fsp.State(s))
	}
	if holder {
		b.SetStart(1)
	}
	return b.MustBuild()
}

// ByzantineQuorum builds n replicas of which faulty are crash-silent,
// deciding by the quorum rendezvous ["vote" x (2f+1)] -> "decide" sized
// for f tolerated faults. With faulty <= f and n = 3f+1 the quorum is
// always reachable and decisions repeat forever: ≈ DecideSpec. With
// faulty > f the quorum can never assemble — the rendezvous is statically
// unsatisfiable (vet's unsatisfiable-vector) and the network is NOT ≈
// DecideSpec, which the game refutes at the root.
func ByzantineQuorum(n, f, faulty int) *compose.Network {
	return byzantineQuorum(fmt.Sprintf("bq-%d-%d-%d", n, f, faulty), n, f, faulty, 1)
}

// ByzantineQuorumSwarm is ByzantineQuorum with `holders` replicas (the
// first stations, all honest — holders must stay <= n-faulty) initially
// holding a gossip token instead of one. Votes and the quorum threshold
// are untouched — tokens gate only the hidden gossip churn — but the
// product of the minimized replicas now sweeps every placement of the
// tokens around the ring, the C(n, holders) bulk the E23 benchmark uses
// to stress minimize-then-compose.
func ByzantineQuorumSwarm(n, f, faulty, holders int) *compose.Network {
	return byzantineQuorum(fmt.Sprintf("bq-swarm-%d-%d-%d-%d", n, f, faulty, holders), n, f, faulty, holders)
}

func byzantineQuorum(name string, n, f, faulty, holders int) *compose.Network {
	net := &compose.Network{Name: name}
	honest := quorumReplica("replica-honest", true, false)
	holder := quorumReplica("replica-holder", true, true)
	bad := quorumReplica("replica-faulty", false, false)
	for i := 0; i < n; i++ {
		r := honest
		if i < holders {
			r = holder
		} else if i > n-1-faulty {
			r = bad
		}
		net.Add(r, map[string]string{
			"recv": fmt.Sprintf("g%d", i),
			"send": fmt.Sprintf("g%d", (i+1)%n),
		})
		net.Hide(fmt.Sprintf("g%d", i))
	}
	net.Hide("vote")
	q := 2*f + 1
	parts := make([]string, q)
	for i := range parts {
		parts[i] = "vote"
	}
	net.AddSync("decide", parts...)
	return net
}

// DecideSpec is the quorum spec: an endless stream of decisions (one
// accepting state, deterministic, tau-free).
func DecideSpec() *fsp.FSP {
	b := fsp.NewBuilder("decide-loop")
	b.AddStates(1)
	b.ArcName(0, "decide", 0)
	b.Accept(0)
	return b.MustBuild()
}

// NondetDecideSpec is DecideSpec as a nondeterministic observer — "decide"
// either stays put or detours through a tau settling state, and the base
// idles through a tau refresh loop — weakly equivalent to DecideSpec and
// determinate, so it routes through the determinized on-the-fly game.
func NondetDecideSpec() *fsp.FSP {
	b := fsp.NewBuilder("nondet-decide-loop")
	b.AddStates(3)
	b.ArcName(0, "decide", 0)
	b.ArcName(0, "decide", 1)
	b.ArcName(1, fsp.TauName, 0)
	b.ArcName(0, fsp.TauName, 2)
	b.ArcName(2, fsp.TauName, 0)
	for s := 0; s < 3; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// stabStation builds one station of the self-stabilizing token ring. On
// top of the plain token-ring cycle (work, pass, idle churn) a station
// that already holds the token absorbs a second incoming token instead of
// refusing it, so a corrupted start with two tokens converges to the
// canonical single-token ring while "work" keeps streaming: the legal
// behaviour is ≈ TokenRingSpec from the corrupted start too. The sinkhole
// variant destroys every token it receives — with it in the ring all
// tokens eventually vanish and the ring falls silent.
func stabStation(name string, holder bool) *fsp.FSP {
	b := fsp.NewBuilder(name)
	// 0 holding, 1 passing, 2 idle base, 3-4 idle churn.
	b.AddStates(5)
	b.ArcName(0, "work", 1)
	b.ArcName(0, "recv", 0) // absorb a colliding second token
	b.ArcName(1, "send'", 2)
	b.ArcName(2, "recv", 0)
	b.ArcName(2, fsp.TauName, 3)
	b.ArcName(3, fsp.TauName, 4)
	b.ArcName(4, fsp.TauName, 2)
	for s := 0; s < 5; s++ {
		b.Accept(fsp.State(s))
	}
	if !holder {
		b.SetStart(2)
	}
	return b.MustBuild()
}

// sinkholeStation destroys every token it receives.
func sinkholeStation() *fsp.FSP {
	b := fsp.NewBuilder("station-sinkhole")
	b.AddStates(1)
	b.ArcName(0, "recv", 0)
	b.Accept(0)
	return b.MustBuild()
}

// stabRing assembles n stations with tokens held by stations 0 and n/2
// (the corrupted start); station sinkhole (if >= 0) destroys tokens.
func stabRing(name string, n, sinkhole int) *compose.Network {
	holder := stabStation("station-stab-holder", true)
	idle := stabStation("station-stab-idle", false)
	net := &compose.Network{Name: name}
	for i := 0; i < n; i++ {
		st := idle
		if i == 0 || i == n/2 {
			st = holder
		}
		if i == sinkhole {
			st = sinkholeStation()
		}
		net.Add(st, map[string]string{
			"recv": fmt.Sprintf("t%d", i),
			"send": fmt.Sprintf("t%d", (i+1)%n),
		})
		net.Hide(fmt.Sprintf("t%d", i))
	}
	return net
}

// StabilizingTokenRing returns the self-stabilizing ring (n >= 3) started
// in the corrupted two-token configuration: token collisions merge, so the
// ring still serves an endless work stream — ≈ TokenRingSpec.
func StabilizingTokenRing(n int) *compose.Network {
	return stabRing(fmt.Sprintf("stab-ring-%d", n), n, -1)
}

// SinkholeTokenRing puts a token-destroying station a quarter of the way
// around the self-stabilizing ring: every token eventually vanishes and
// the ring can fall silent forever — NOT ≈ TokenRingSpec.
func SinkholeTokenRing(n int) *compose.Network {
	return stabRing(fmt.Sprintf("stab-ring-%d-sinkhole", n), n, 1+n/4)
}

// ProtocolGallery returns the distributed-protocols exhibits: for each
// protocol a correct instance, a defective variant, and (for the quorum)
// a nondeterministic-spec route, with the expected ≈ verdicts.
func ProtocolGallery() []NetworkGalleryEntry {
	return []NetworkGalleryEntry{
		{
			Name:        "leader-ring-5",
			Net:         ElectionRing(5),
			Spec:        ElectionSpec(),
			Weak:        true,
			Description: "token-based election ratified by an n-way rendezvous elects exactly once",
		},
		{
			Name:        "leader-ring-5-no-ack",
			Net:         NoAckElectionRing(5),
			Spec:        ElectionSpec(),
			Weak:        false,
			Description: "a station that never ratifies can freeze the election forever",
		},
		{
			Name:        "2pc-3-commit",
			Net:         TwoPhaseCommit(3, 0),
			Spec:        DecisionSpec("commit"),
			Weak:        true,
			Description: "unanimous consent commits via the (n+1)-way rendezvous",
		},
		{
			Name:        "2pc-3-abort",
			Net:         TwoPhaseCommit(3, 1),
			Spec:        DecisionSpec("abort"),
			Weak:        true,
			Description: "one dissenting vote forces the abort rendezvous",
		},
		{
			Name:        "2pc-3-buggy",
			Net:         BuggyTwoPhaseCommit(3),
			Spec:        DecisionSpec("abort"),
			Weak:        false,
			Description: "a coordinator that skips one participant can commit over a no-vote",
		},
		{
			Name:        "bq-4-1",
			Net:         ByzantineQuorum(4, 1, 1),
			Spec:        DecideSpec(),
			Weak:        true,
			Description: "3 honest of 4 replicas reach the 2f+1 quorum forever",
		},
		{
			Name:        "bq-4-overfaulty",
			Net:         ByzantineQuorum(4, 1, 2),
			Spec:        DecideSpec(),
			Weak:        false,
			Description: "two faults exceed f=1: the quorum rendezvous never assembles",
		},
		{
			Name:        "bq-4-1-nondet-spec",
			Net:         ByzantineQuorum(4, 1, 1),
			Spec:        NondetDecideSpec(),
			Weak:        true,
			Description: "the quorum against a nondeterministic decide observer",
		},
		{
			Name:        "bq-4-overfaulty-nondet-spec",
			Net:         ByzantineQuorum(4, 1, 2),
			Spec:        NondetDecideSpec(),
			Weak:        false,
			Description: "the starved quorum caught by a nondeterministic observer",
		},
		{
			Name:        "stab-ring-5",
			Net:         StabilizingTokenRing(5),
			Spec:        TokenRingSpec(),
			Weak:        true,
			Description: "two colliding tokens merge: the corrupted ring stabilizes to the work stream",
		},
		{
			Name:        "stab-ring-5-sinkhole",
			Net:         SinkholeTokenRing(5),
			Spec:        TokenRingSpec(),
			Weak:        false,
			Description: "a token-destroying station eventually silences the ring",
		},
	}
}
