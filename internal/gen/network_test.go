package gen

import (
	"context"
	"testing"

	"ccs/internal/core"
	"ccs/internal/engine"
	"ccs/internal/fsp"
)

// TestBufferLaw is the gallery's headline property, checked both flat and
// through the engine pipeline: n chained one-place buffers are
// observationally equivalent to the n-place counter, and the lossy variant
// is not.
func TestBufferLaw(t *testing.T) {
	for _, entry := range NetworkGallery() {
		flat, err := entry.Net.FSP()
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		got, err := core.WeakEquivalent(flat, entry.Spec)
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if got != entry.Weak {
			t.Errorf("%s (flat): ≈ = %v, want %v — %s", entry.Name, got, entry.Weak, entry.Description)
		}
		eng, err := engine.New().CheckNetwork(context.Background(), entry.Net, entry.Spec, engine.Weak, 0)
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if eng != entry.Weak {
			t.Errorf("%s (engine MTC): ≈ = %v, want %v", entry.Name, eng, entry.Weak)
		}
	}
}

// TestRelayCollapse quantifies the point of minimize-then-compose on the
// tau-rich relay family: the minimized product must be dramatically
// smaller than the flat product (cells collapse to 2 states each).
func TestRelayCollapse(t *testing.T) {
	net := RelayNetwork(4, 3)
	flat, err := net.FSP()
	if err != nil {
		t.Fatal(err)
	}
	min, err := engine.New().ComposeNetwork(context.Background(), net, engine.Weak)
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates()*4 > flat.NumStates() {
		t.Errorf("minimized product %d states vs flat %d: expected >= 4x collapse",
			min.NumStates(), flat.NumStates())
	}
	cell := BufferCell(3)
	cellMin, _, err := core.QuotientWeak(cell)
	if err != nil {
		t.Fatal(err)
	}
	if cellMin.NumStates() != 2 {
		t.Errorf("BufferCell(3)/≈ has %d states, want 2", cellMin.NumStates())
	}
}

// TestNondetSpecsFaithful: the nondeterministic spec family is weakly
// equivalent to its deterministic counterparts — the nondeterminism and
// the tau detours are deliberately inessential — while being genuinely
// nondeterministic and tau-bearing (what the direct on-the-fly game
// refuses and the determinized game absorbs).
func TestNondetSpecsFaithful(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		eq, err := core.WeakEquivalent(NondetCounterSpec(n), CounterSpec(n))
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("NondetCounterSpec(%d) ≉ CounterSpec(%d)", n, n)
		}
	}
	eq, err := core.WeakEquivalent(NondetTokenRingSpec(), TokenRingSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("NondetTokenRingSpec ≉ TokenRingSpec")
	}
	for _, spec := range []struct {
		name string
		f    *fsp.FSP
	}{
		{"NondetCounterSpec(3)", NondetCounterSpec(3)},
		{"NondetTokenRingSpec", NondetTokenRingSpec()},
	} {
		tau, nondet := false, false
		for s := 0; s < spec.f.NumStates(); s++ {
			arcs := spec.f.Arcs(fsp.State(s))
			for i, a := range arcs {
				if a.Act == fsp.Tau {
					tau = true
				}
				if i > 0 && arcs[i-1].Act == a.Act {
					nondet = true
				}
			}
		}
		if !tau || !nondet {
			t.Errorf("%s: tau=%v nondet=%v; the family must exercise both defects", spec.name, tau, nondet)
		}
	}
}
