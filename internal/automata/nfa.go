// Package automata provides the classical finite-automata substrate that the
// paper builds on (Hopcroft & Ullman 1979): NFAs and DFAs, subset
// construction, Hopcroft's O(N log N) and Moore's DFA minimization, DFA
// equivalence with UNION-FIND (Aho, Hopcroft & Ullman 1974, §4.8), on-the-fly
// NFA language equivalence, and universality testing (L = Sigma*, the
// PSPACE-complete problem of Stockmeyer & Meyer 1973 that drives the paper's
// lower bounds).
//
// Automata here are epsilon-free: callers eliminate tau moves with the fsp
// package's closure utilities before converting.
package automata

import (
	"fmt"
	"sort"
)

// NFA is a nondeterministic finite automaton over a dense symbol alphabet
// 0..NumSymbols-1 without epsilon moves.
type NFA struct {
	numStates  int
	numSymbols int
	start      int32
	accept     []bool
	delta      [][][]int32 // delta[state][symbol] sorted target list
}

// NewNFA returns an empty NFA with the given shape. All states start
// non-accepting.
func NewNFA(states, symbols int, start int32) (*NFA, error) {
	if states <= 0 {
		return nil, fmt.Errorf("automata: states = %d, want > 0", states)
	}
	if symbols < 0 {
		return nil, fmt.Errorf("automata: symbols = %d, want >= 0", symbols)
	}
	if start < 0 || int(start) >= states {
		return nil, fmt.Errorf("automata: start %d out of range", start)
	}
	delta := make([][][]int32, states)
	for i := range delta {
		delta[i] = make([][]int32, symbols)
	}
	return &NFA{
		numStates:  states,
		numSymbols: symbols,
		start:      start,
		accept:     make([]bool, states),
		delta:      delta,
	}, nil
}

// MustNFA is NewNFA for statically known shapes; it panics on error.
func MustNFA(states, symbols int, start int32) *NFA {
	n, err := NewNFA(states, symbols, start)
	if err != nil {
		panic(err)
	}
	return n
}

// AddArc inserts the transition (from, sym, to). Duplicates are ignored.
func (n *NFA) AddArc(from int32, sym int, to int32) error {
	if from < 0 || int(from) >= n.numStates || to < 0 || int(to) >= n.numStates {
		return fmt.Errorf("automata: arc (%d,%d,%d) out of range", from, sym, to)
	}
	if sym < 0 || sym >= n.numSymbols {
		return fmt.Errorf("automata: symbol %d out of range", sym)
	}
	lst := n.delta[from][sym]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= to })
	if i < len(lst) && lst[i] == to {
		return nil
	}
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = to
	n.delta[from][sym] = lst
	return nil
}

// SetAccept marks state s accepting or not.
func (n *NFA) SetAccept(s int32, accepting bool) {
	n.accept[s] = accepting
}

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return n.numStates }

// NumSymbols returns the alphabet size.
func (n *NFA) NumSymbols() int { return n.numSymbols }

// Start returns the start state.
func (n *NFA) Start() int32 { return n.start }

// Accepting reports whether s is accepting.
func (n *NFA) Accepting(s int32) bool { return n.accept[s] }

// Next returns the sorted successor list of (s, sym); shared, do not modify.
func (n *NFA) Next(s int32, sym int) []int32 { return n.delta[s][sym] }

// NumArcs counts the transitions.
func (n *NFA) NumArcs() int {
	total := 0
	for _, row := range n.delta {
		for _, lst := range row {
			total += len(lst)
		}
	}
	return total
}

// step returns the sorted successor set of a sorted state set under sym.
func (n *NFA) step(set []int32, sym int, mark []bool) []int32 {
	var out []int32
	for _, s := range set {
		for _, t := range n.delta[s][sym] {
			if !mark[t] {
				mark[t] = true
				out = append(out, t)
			}
		}
	}
	for _, t := range out {
		mark[t] = false
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// anyAccepting reports whether the set contains an accepting state.
func (n *NFA) anyAccepting(set []int32) bool {
	for _, s := range set {
		if n.accept[s] {
			return true
		}
	}
	return false
}

// AcceptsWord runs the subset simulation on one word. Intended for tests
// and brute-force cross-validation.
func (n *NFA) AcceptsWord(word []int) bool {
	set := []int32{n.start}
	mark := make([]bool, n.numStates)
	for _, sym := range word {
		if sym < 0 || sym >= n.numSymbols {
			return false
		}
		set = n.step(set, sym, mark)
		if len(set) == 0 {
			return false
		}
	}
	return n.anyAccepting(set)
}

func setKey(set []int32) string {
	buf := make([]byte, 0, len(set)*4)
	for _, s := range set {
		buf = append(buf, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(buf)
}
