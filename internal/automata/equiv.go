package automata

import "fmt"

// unionFind is a standard disjoint-set forest with path halving.
type unionFind struct {
	parent []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

func (uf *unionFind) find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b; it reports whether they were distinct.
func (uf *unionFind) union(a, b int32) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	uf.parent[ra] = rb
	return true
}

// EquivalentDFA decides L(a) = L(b) with the UNION-FIND procedure of Aho,
// Hopcroft & Ullman (1974, §4.8): merge the start states, then propagate
// merges along matching symbols; the languages differ iff two states with
// different acceptance end up merged. Runs in O(N sigma alpha(N)).
func EquivalentDFA(a, b *DFA) (bool, error) {
	if a.numSymbols != b.numSymbols {
		return false, fmt.Errorf("automata: alphabet sizes differ: %d vs %d", a.numSymbols, b.numSymbols)
	}
	off := int32(a.numStates)
	uf := newUnionFind(a.numStates + b.numStates)
	accept := func(s int32) bool {
		if s < off {
			return a.accept[s]
		}
		return b.accept[s-off]
	}
	next := func(s int32, sym int) int32 {
		if s < off {
			return a.delta[s][sym]
		}
		return b.delta[s-off][sym] + off
	}

	type pair struct{ x, y int32 }
	stack := []pair{{a.start, b.start + off}}
	uf.union(a.start, b.start+off)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if accept(p.x) != accept(p.y) {
			return false, nil
		}
		for sym := 0; sym < a.numSymbols; sym++ {
			nx, ny := next(p.x, sym), next(p.y, sym)
			if uf.union(nx, ny) {
				stack = append(stack, pair{nx, ny})
			}
		}
	}
	return true, nil
}

// EquivalentNFA decides L(a) = L(b) by a synchronized on-the-fly subset
// construction: it explores reachable subset pairs, failing on the first
// pair with mismatched acceptance. The witness word distinguishing the
// languages (shortest via BFS) is returned when they differ. Worst case
// exponential — NFA equivalence is PSPACE-complete (Stockmeyer & Meyer
// 1973), which is exactly the hardness the paper inherits for its ≈_k and
// failure-equivalence lower bounds.
func EquivalentNFA(a, b *NFA) (bool, []int, error) {
	if a.numSymbols != b.numSymbols {
		return false, nil, fmt.Errorf("automata: alphabet sizes differ: %d vs %d", a.numSymbols, b.numSymbols)
	}
	type node struct {
		sa, sb []int32
		parent int
		sym    int
	}
	seen := map[string]bool{}
	queue := []node{{sa: []int32{a.start}, sb: []int32{b.start}, parent: -1}}
	seen[setKey(queue[0].sa)+"|"+setKey(queue[0].sb)] = true
	markA := make([]bool, a.numStates)
	markB := make([]bool, b.numStates)

	witness := func(i int) []int {
		var rev []int
		for queue[i].parent >= 0 {
			rev = append(rev, queue[i].sym)
			i = queue[i].parent
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		return rev
	}

	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if a.anyAccepting(cur.sa) != b.anyAccepting(cur.sb) {
			return false, witness(head), nil
		}
		for sym := 0; sym < a.numSymbols; sym++ {
			na := a.step(cur.sa, sym, markA)
			nb := b.step(cur.sb, sym, markB)
			key := setKey(na) + "|" + setKey(nb)
			if !seen[key] {
				seen[key] = true
				queue = append(queue, node{sa: na, sb: nb, parent: head, sym: sym})
			}
		}
	}
	return true, nil, nil
}

// Universal decides L(n) = Sigma* by on-the-fly determinization: the
// language is universal iff every reachable subset contains an accepting
// state. Returns the shortest rejected word as witness when not universal.
func Universal(n *NFA) (bool, []int) {
	type node struct {
		set    []int32
		parent int
		sym    int
	}
	seen := map[string]bool{}
	queue := []node{{set: []int32{n.start}, parent: -1}}
	seen[setKey(queue[0].set)] = true
	mark := make([]bool, n.numStates)

	witness := func(i int) []int {
		var rev []int
		for queue[i].parent >= 0 {
			rev = append(rev, queue[i].sym)
			i = queue[i].parent
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		return rev
	}

	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if !n.anyAccepting(cur.set) {
			return false, witness(head)
		}
		for sym := 0; sym < n.numSymbols; sym++ {
			succ := n.step(cur.set, sym, mark)
			key := setKey(succ)
			if !seen[key] {
				seen[key] = true
				queue = append(queue, node{set: succ, parent: head, sym: sym})
			}
		}
	}
	return true, nil
}
