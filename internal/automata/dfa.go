package automata

import "fmt"

// DFA is a complete deterministic finite automaton: every state has exactly
// one successor per symbol.
type DFA struct {
	numStates  int
	numSymbols int
	start      int32
	accept     []bool
	delta      [][]int32 // delta[state][symbol]
}

// NewDFA returns a DFA with the given shape whose transitions all initially
// self-loop (state 0 target); callers set them with SetArc.
func NewDFA(states, symbols int, start int32) (*DFA, error) {
	if states <= 0 {
		return nil, fmt.Errorf("automata: states = %d, want > 0", states)
	}
	if start < 0 || int(start) >= states {
		return nil, fmt.Errorf("automata: start %d out of range", start)
	}
	delta := make([][]int32, states)
	for i := range delta {
		delta[i] = make([]int32, symbols)
	}
	return &DFA{
		numStates:  states,
		numSymbols: symbols,
		start:      start,
		accept:     make([]bool, states),
		delta:      delta,
	}, nil
}

// MustDFA is NewDFA for statically known shapes; it panics on error.
func MustDFA(states, symbols int, start int32) *DFA {
	d, err := NewDFA(states, symbols, start)
	if err != nil {
		panic(err)
	}
	return d
}

// SetArc sets the unique transition (from, sym) -> to.
func (d *DFA) SetArc(from int32, sym int, to int32) error {
	if from < 0 || int(from) >= d.numStates || to < 0 || int(to) >= d.numStates {
		return fmt.Errorf("automata: arc (%d,%d,%d) out of range", from, sym, to)
	}
	if sym < 0 || sym >= d.numSymbols {
		return fmt.Errorf("automata: symbol %d out of range", sym)
	}
	d.delta[from][sym] = to
	return nil
}

// SetAccept marks state s accepting or not.
func (d *DFA) SetAccept(s int32, accepting bool) { d.accept[s] = accepting }

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return d.numStates }

// NumSymbols returns the alphabet size.
func (d *DFA) NumSymbols() int { return d.numSymbols }

// Start returns the start state.
func (d *DFA) Start() int32 { return d.start }

// Accepting reports whether s is accepting.
func (d *DFA) Accepting(s int32) bool { return d.accept[s] }

// Next returns the unique successor of (s, sym).
func (d *DFA) Next(s int32, sym int) int32 { return d.delta[s][sym] }

// AcceptsWord runs the DFA on one word.
func (d *DFA) AcceptsWord(word []int) bool {
	s := d.start
	for _, sym := range word {
		if sym < 0 || sym >= d.numSymbols {
			return false
		}
		s = d.delta[s][sym]
	}
	return d.accept[s]
}

// Determinize performs the subset construction, producing a complete DFA
// whose states are the reachable subsets (including the empty "dead"
// subset when some transition is missing).
func Determinize(n *NFA) *DFA {
	type entry struct {
		set []int32
		id  int32
	}
	ids := map[string]int32{}
	var queue []entry

	intern := func(set []int32) int32 {
		k := setKey(set)
		if id, ok := ids[k]; ok {
			return id
		}
		id := int32(len(ids))
		ids[k] = id
		queue = append(queue, entry{set: set, id: id})
		return id
	}

	mark := make([]bool, n.numStates)
	startID := intern([]int32{n.start})
	var (
		accept []bool
		delta  [][]int32
	)
	for head := 0; head < len(queue); head++ {
		e := queue[head]
		for int(e.id) >= len(accept) {
			accept = append(accept, false)
			delta = append(delta, make([]int32, n.numSymbols))
		}
		accept[e.id] = n.anyAccepting(e.set)
		for sym := 0; sym < n.numSymbols; sym++ {
			succ := n.step(e.set, sym, mark)
			delta[e.id][sym] = intern(succ)
		}
	}
	// Late-created states (queued but loop already sized arrays): the loop
	// above extends arrays on visit, and every queued id is visited.
	return &DFA{
		numStates:  len(queue),
		numSymbols: n.numSymbols,
		start:      startID,
		accept:     accept,
		delta:      delta,
	}
}

// Reachable returns the set of states reachable from the start.
func (d *DFA) Reachable() []bool {
	seen := make([]bool, d.numStates)
	seen[d.start] = true
	stack := []int32{d.start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for sym := 0; sym < d.numSymbols; sym++ {
			t := d.delta[s][sym]
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return seen
}
