package automata

import (
	"math/rand"
	"testing"
)

// evenAs returns a DFA over {0,1} accepting words with an even number of 0s.
func evenAs(t *testing.T) *DFA {
	t.Helper()
	d := MustDFA(2, 2, 0)
	d.SetAccept(0, true)
	mustArc(t, d.SetArc(0, 0, 1))
	mustArc(t, d.SetArc(0, 1, 0))
	mustArc(t, d.SetArc(1, 0, 0))
	mustArc(t, d.SetArc(1, 1, 1))
	return d
}

func mustArc(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("arc: %v", err)
	}
}

func TestDFAAcceptsWord(t *testing.T) {
	d := evenAs(t)
	cases := []struct {
		word []int
		want bool
	}{
		{nil, true},
		{[]int{0}, false},
		{[]int{0, 0}, true},
		{[]int{1, 1, 1}, true},
		{[]int{0, 1, 0}, true},
		{[]int{0, 1, 1}, false},
		{[]int{9}, false},
	}
	for _, tc := range cases {
		if got := d.AcceptsWord(tc.word); got != tc.want {
			t.Errorf("AcceptsWord(%v) = %v, want %v", tc.word, got, tc.want)
		}
	}
}

func TestNFAConstruction(t *testing.T) {
	n := MustNFA(3, 2, 0)
	if err := n.AddArc(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AddArc(0, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.AddArc(0, 0, 1); err != nil { // duplicate
		t.Fatal(err)
	}
	if n.NumArcs() != 2 {
		t.Errorf("NumArcs = %d, want 2 (duplicates ignored)", n.NumArcs())
	}
	if err := n.AddArc(0, 5, 1); err == nil {
		t.Error("bad symbol accepted")
	}
	if err := n.AddArc(0, 0, 9); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := NewNFA(0, 1, 0); err == nil {
		t.Error("zero states accepted")
	}
	if _, err := NewNFA(2, 1, 5); err == nil {
		t.Error("bad start accepted")
	}
}

// abStarNFA accepts (ab)* over {a=0, b=1}, nondeterministically padded.
func abStarNFA(t *testing.T) *NFA {
	t.Helper()
	n := MustNFA(3, 2, 0)
	n.SetAccept(0, true)
	mustArc(t, n.AddArc(0, 0, 1))
	mustArc(t, n.AddArc(1, 1, 0))
	mustArc(t, n.AddArc(0, 0, 2)) // dead-end copy of the a-move
	return n
}

func TestDeterminize(t *testing.T) {
	n := abStarNFA(t)
	d := Determinize(n)
	words := [][]int{nil, {0}, {0, 1}, {0, 1, 0, 1}, {1}, {0, 0}, {0, 1, 0}}
	for _, w := range words {
		if got, want := d.AcceptsWord(w), n.AcceptsWord(w); got != want {
			t.Errorf("word %v: DFA %v, NFA %v", w, got, want)
		}
	}
}

func TestMinimize(t *testing.T) {
	// Build a redundant DFA for "even number of 0s" with duplicated states.
	d := MustDFA(4, 2, 0)
	d.SetAccept(0, true)
	d.SetAccept(2, true)
	// states 0,2 equivalent; 1,3 equivalent.
	mustArc(t, d.SetArc(0, 0, 1))
	mustArc(t, d.SetArc(0, 1, 2))
	mustArc(t, d.SetArc(2, 0, 3))
	mustArc(t, d.SetArc(2, 1, 0))
	mustArc(t, d.SetArc(1, 0, 2))
	mustArc(t, d.SetArc(1, 1, 3))
	mustArc(t, d.SetArc(3, 0, 0))
	mustArc(t, d.SetArc(3, 1, 1))
	min := d.Minimize()
	if min.NumStates() != 2 {
		t.Errorf("minimized to %d states, want 2", min.NumStates())
	}
	eq, err := EquivalentDFA(d, min)
	if err != nil || !eq {
		t.Errorf("minimized DFA not equivalent: %v %v", eq, err)
	}
	moore := d.MinimizeMoore()
	if moore.NumStates() != 2 {
		t.Errorf("Moore minimized to %d states, want 2", moore.NumStates())
	}
}

func TestMinimizeDropsUnreachable(t *testing.T) {
	d := MustDFA(3, 1, 0)
	mustArc(t, d.SetArc(0, 0, 0))
	mustArc(t, d.SetArc(1, 0, 2)) // unreachable island
	mustArc(t, d.SetArc(2, 0, 1))
	d.SetAccept(1, true)
	min := d.Minimize()
	if min.NumStates() != 1 {
		t.Errorf("minimized to %d states, want 1", min.NumStates())
	}
}

func TestEquivalentDFA(t *testing.T) {
	a := evenAs(t)
	b := evenAs(t)
	eq, err := EquivalentDFA(a, b)
	if err != nil || !eq {
		t.Fatalf("identical DFAs not equivalent: %v %v", eq, err)
	}
	b.SetAccept(1, true)
	eq, err = EquivalentDFA(a, b)
	if err != nil || eq {
		t.Fatalf("different DFAs reported equivalent")
	}
	c := MustDFA(1, 3, 0)
	if _, err := EquivalentDFA(a, c); err == nil {
		t.Error("alphabet mismatch not reported")
	}
}

func TestEquivalentNFA(t *testing.T) {
	a := abStarNFA(t)
	b := abStarNFA(t)
	eq, w, err := EquivalentNFA(a, b)
	if err != nil || !eq || w != nil {
		t.Fatalf("identical NFAs: eq=%v w=%v err=%v", eq, w, err)
	}
	// c accepts (ab)* plus the word "a".
	c := abStarNFA(t)
	c.SetAccept(1, true)
	eq, w, err = EquivalentNFA(a, c)
	if err != nil || eq {
		t.Fatalf("different NFAs reported equivalent")
	}
	if a.AcceptsWord(w) == c.AcceptsWord(w) {
		t.Errorf("witness %v does not distinguish", w)
	}
	if len(w) != 1 || w[0] != 0 {
		t.Errorf("shortest witness should be [0], got %v", w)
	}
}

func TestUniversal(t *testing.T) {
	// Sigma* automaton: single accepting state with self loops.
	u := MustNFA(1, 2, 0)
	u.SetAccept(0, true)
	mustArc(t, u.AddArc(0, 0, 0))
	mustArc(t, u.AddArc(0, 1, 0))
	ok, w := Universal(u)
	if !ok || w != nil {
		t.Fatalf("Sigma* not universal: %v %v", ok, w)
	}

	n := abStarNFA(t)
	ok, w = Universal(n)
	if ok {
		t.Fatal("(ab)* reported universal")
	}
	if n.AcceptsWord(w) {
		t.Errorf("witness %v is accepted", w)
	}
	if len(w) != 1 {
		t.Errorf("shortest rejected word should have length 1, got %v", w)
	}
}

// randomNFA generates a random NFA for cross-validation.
func randomNFA(rng *rand.Rand, states, symbols, arcs int) *NFA {
	n := MustNFA(states, symbols, int32(rng.Intn(states)))
	for i := 0; i < arcs; i++ {
		_ = n.AddArc(int32(rng.Intn(states)), rng.Intn(symbols), int32(rng.Intn(states)))
	}
	for s := 0; s < states; s++ {
		n.SetAccept(int32(s), rng.Intn(2) == 0)
	}
	return n
}

// enumWords enumerates all words over symbols of length <= maxLen.
func enumWords(symbols, maxLen int) [][]int {
	out := [][]int{{}}
	frontier := [][]int{{}}
	for l := 0; l < maxLen; l++ {
		var next [][]int
		for _, w := range frontier {
			for s := 0; s < symbols; s++ {
				nw := append(append([]int{}, w...), s)
				next = append(next, nw)
				out = append(out, nw)
			}
		}
		frontier = next
	}
	return out
}

func TestDeterminizeAgreesWithNFAOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	words := enumWords(2, 5)
	for trial := 0; trial < 100; trial++ {
		n := randomNFA(rng, 2+rng.Intn(5), 2, rng.Intn(12))
		d := Determinize(n)
		min := d.Minimize()
		moore := d.MinimizeMoore()
		if min.NumStates() != moore.NumStates() {
			t.Fatalf("trial %d: Hopcroft %d states vs Moore %d", trial, min.NumStates(), moore.NumStates())
		}
		for _, w := range words {
			want := n.AcceptsWord(w)
			if d.AcceptsWord(w) != want || min.AcceptsWord(w) != want {
				t.Fatalf("trial %d: disagreement on %v", trial, w)
			}
		}
	}
}

func TestEquivalentNFAAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	words := enumWords(2, 6)
	for trial := 0; trial < 150; trial++ {
		a := randomNFA(rng, 2+rng.Intn(4), 2, rng.Intn(9))
		b := randomNFA(rng, 2+rng.Intn(4), 2, rng.Intn(9))
		eq, w, err := EquivalentNFA(a, b)
		if err != nil {
			t.Fatal(err)
		}
		brute := true
		for _, word := range words {
			if a.AcceptsWord(word) != b.AcceptsWord(word) {
				brute = false
				break
			}
		}
		// Brute force only checks short words; when it says "different" the
		// checker must agree. When the checker says different, the witness
		// must be real.
		if !brute && eq {
			t.Fatalf("trial %d: checker says equal, brute force found difference", trial)
		}
		if !eq && a.AcceptsWord(w) == b.AcceptsWord(w) {
			t.Fatalf("trial %d: witness %v does not distinguish", trial, w)
		}
	}
}

func TestDFAEquivalenceAgreesWithNFAEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		a := randomNFA(rng, 2+rng.Intn(4), 2, rng.Intn(9))
		b := randomNFA(rng, 2+rng.Intn(4), 2, rng.Intn(9))
		nfaEq, _, err := EquivalentNFA(a, b)
		if err != nil {
			t.Fatal(err)
		}
		dfaEq, err := EquivalentDFA(Determinize(a), Determinize(b))
		if err != nil {
			t.Fatal(err)
		}
		if nfaEq != dfaEq {
			t.Fatalf("trial %d: NFA equivalence %v, DFA equivalence %v", trial, nfaEq, dfaEq)
		}
	}
}
