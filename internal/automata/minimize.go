package automata

import (
	"ccs/internal/lts"
	"ccs/internal/partition"
)

// Minimize returns the minimal complete DFA accepting the same language,
// considering only reachable states. It delegates to the relational coarsest
// partition solver, which on deterministic graphs specializes to Hopcroft's
// O(N log N) "process the smaller half" algorithm (Hopcroft 1971) — the
// technique the paper generalizes in Section 3.
func (d *DFA) Minimize() *DFA {
	return d.minimizeWith(partition.PaigeTarjanIndex)
}

// MinimizeMoore is the O(N^2 sigma) round-based minimization of Moore,
// retained as an independently implemented cross-check for Minimize.
func (d *DFA) MinimizeMoore() *DFA {
	return d.minimizeWith(partition.NaiveIndex)
}

func (d *DFA) minimizeWith(solve func(*lts.Index, []int32) *partition.Partition) *DFA {
	// Restrict to reachable states, renumbering densely.
	reach := d.Reachable()
	remap := make([]int32, d.numStates)
	var live int32
	for s := 0; s < d.numStates; s++ {
		if reach[s] {
			remap[s] = live
			live++
		} else {
			remap[s] = -1
		}
	}

	// The refinement instance is built straight into the CSR kernel:
	// anonymous dense labels (the DFA symbols), initial partition accepting
	// vs non-accepting.
	b := lts.NewBuilder(int(live), d.numSymbols)
	initial := make([]int32, live)
	hasAcc, hasRej := false, false
	for s := 0; s < d.numStates; s++ {
		if reach[s] && d.accept[s] {
			hasAcc = true
		}
		if reach[s] && !d.accept[s] {
			hasRej = true
		}
	}
	for s := 0; s < d.numStates; s++ {
		if !reach[s] {
			continue
		}
		blk := int32(0)
		if hasAcc && hasRej && !d.accept[s] {
			blk = 1
		}
		initial[remap[s]] = blk
		for sym := 0; sym < d.numSymbols; sym++ {
			b.Add(remap[s], int32(sym), remap[d.delta[s][sym]])
		}
	}
	p := solve(b.Build(), initial)

	out, err := NewDFA(p.NumBlocks(), d.numSymbols, p.Block(remap[d.start]))
	if err != nil {
		// p.NumBlocks() >= 1 whenever live >= 1; unreachable in practice.
		panic(err)
	}
	for s := 0; s < d.numStates; s++ {
		if !reach[s] {
			continue
		}
		b := p.Block(remap[s])
		out.accept[b] = d.accept[s]
		for sym := 0; sym < d.numSymbols; sym++ {
			out.delta[b][sym] = p.Block(remap[d.delta[s][sym]])
		}
	}
	return out
}
