package automata

import (
	"ccs/internal/partition"
)

// Minimize returns the minimal complete DFA accepting the same language,
// considering only reachable states. It delegates to the relational coarsest
// partition solver, which on deterministic graphs specializes to Hopcroft's
// O(N log N) "process the smaller half" algorithm (Hopcroft 1971) — the
// technique the paper generalizes in Section 3.
func (d *DFA) Minimize() *DFA {
	return d.minimizeWith(func(pr *partition.Problem) *partition.Partition {
		return pr.PaigeTarjan()
	})
}

// MinimizeMoore is the O(N^2 sigma) round-based minimization of Moore,
// retained as an independently implemented cross-check for Minimize.
func (d *DFA) MinimizeMoore() *DFA {
	return d.minimizeWith(func(pr *partition.Problem) *partition.Partition {
		return pr.Naive()
	})
}

func (d *DFA) minimizeWith(solve func(*partition.Problem) *partition.Partition) *DFA {
	// Restrict to reachable states, renumbering densely.
	reach := d.Reachable()
	remap := make([]int32, d.numStates)
	var live int32
	for s := 0; s < d.numStates; s++ {
		if reach[s] {
			remap[s] = live
			live++
		} else {
			remap[s] = -1
		}
	}

	pr := &partition.Problem{
		N:         int(live),
		NumLabels: d.numSymbols,
		Initial:   make([]int32, live),
	}
	// Initial partition: accepting vs non-accepting (made dense below).
	hasAcc, hasRej := false, false
	for s := 0; s < d.numStates; s++ {
		if reach[s] && d.accept[s] {
			hasAcc = true
		}
		if reach[s] && !d.accept[s] {
			hasRej = true
		}
	}
	for s := 0; s < d.numStates; s++ {
		if !reach[s] {
			continue
		}
		blk := int32(0)
		if hasAcc && hasRej && !d.accept[s] {
			blk = 1
		}
		pr.Initial[remap[s]] = blk
		for sym := 0; sym < d.numSymbols; sym++ {
			pr.Edges = append(pr.Edges, partition.Edge{
				From:  remap[s],
				Label: int32(sym),
				To:    remap[d.delta[s][sym]],
			})
		}
	}
	p := solve(pr)

	out, err := NewDFA(p.NumBlocks(), d.numSymbols, p.Block(remap[d.start]))
	if err != nil {
		// p.NumBlocks() >= 1 whenever live >= 1; unreachable in practice.
		panic(err)
	}
	for s := 0; s < d.numStates; s++ {
		if !reach[s] {
			continue
		}
		b := p.Block(remap[s])
		out.accept[b] = d.accept[s]
		for sym := 0; sym < d.numSymbols; sym++ {
			out.delta[b][sym] = p.Block(remap[d.delta[s][sym]])
		}
	}
	return out
}
