package engine

import (
	"context"
	"testing"

	"ccs/internal/compose"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/vet"
)

// These tests pin the contract of OTFInfo.Diagnostics: when the on-the-fly
// game refuses a query — essential spec nondeterminism (UndecidedError) or
// an ineligible spec (IneligibleError) — the fallback report carries the
// static-analysis findings about the ORIGINAL inputs alongside the
// fallback reason, and on-the-fly verdicts carry none.

func hasCode(diags []vet.Diagnostic, code string) bool {
	for _, d := range diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

// branchDivergent is a.(b+c) with a tau-cycle tail: after b or c the
// process can diverge — a vet finding — and its a-derivative pair is what
// makes the a.b+a.c spec essentially nondeterministic.
func branchDivergent(t *testing.T) *compose.Network {
	t.Helper()
	b := fsp.NewBuilder("branch-div")
	b.AddStates(4)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "b", 2)
	b.ArcName(1, "c", 2)
	b.ArcName(2, fsp.TauName, 3)
	b.ArcName(3, fsp.TauName, 2)
	for s := 0; s < 4; s++ {
		b.Accept(fsp.State(s))
	}
	return compose.New("trap-div", b.MustBuild())
}

func essentialSpec(t *testing.T) *fsp.FSP {
	t.Helper()
	b := fsp.NewBuilder("a.b+a.c")
	b.AddStates(5)
	b.ArcName(0, "a", 1)
	b.ArcName(0, "a", 2)
	b.ArcName(1, "b", 3)
	b.ArcName(2, "c", 4)
	for s := 0; s < 5; s++ {
		b.Accept(fsp.State(s))
	}
	return b.MustBuild()
}

// TestOTFUndecidedCarriesDiagnostics: the UndecidedError fallback path.
func TestOTFUndecidedCarriesDiagnostics(t *testing.T) {
	c := New()
	_, info, err := c.CheckNetworkOTFInfo(context.Background(), branchDivergent(t), essentialSpec(t), Weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Route != RouteMTCFallback || info.Fallback == "" {
		t.Fatalf("route %q fallback %q, want the undecided fallback on record", info.Route, info.Fallback)
	}
	if !hasCode(info.Diagnostics, vet.CodeTauDivergence) {
		t.Errorf("fallback diagnostics %v missing the component's tau-divergence", info.Diagnostics)
	}
}

// TestOTFIneligibleCarriesDiagnostics: the IneligibleError fallback path
// (an epsilon-tainted spec never enters the game; the strong relation so
// the quotient does not reject the epsilon first). The network's start
// state sits on a tau-cycle, so the findings must include unguarded-start
// positioned on the component.
func TestOTFIneligibleCarriesDiagnostics(t *testing.T) {
	b := fsp.NewBuilder("unguarded")
	b.AddStates(2)
	b.ArcName(0, fsp.TauName, 0)
	b.ArcName(0, "a", 1)
	b.ArcName(1, "a'", 0)
	b.Accept(0)
	b.Accept(1)
	net := compose.New("unguarded-net", b.MustBuild())

	sb := fsp.NewBuilder("eps-spec")
	sb.AddStates(2)
	sb.ArcName(0, fsp.EpsilonName, 1)
	sb.ArcName(0, "a", 1)
	sb.Accept(0)
	sb.Accept(1)
	spec := sb.MustBuild()

	c := New()
	_, info, err := c.CheckNetworkOTFInfo(context.Background(), net, spec, Strong, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Route != RouteMTCFallback || info.Fallback == "" {
		t.Fatalf("route %q fallback %q, want the ineligible fallback on record", info.Route, info.Fallback)
	}
	found := false
	for _, d := range info.Diagnostics {
		if d.Code == vet.CodeUnguardedStart && d.Component == 1 && !d.Spec {
			found = true
		}
	}
	if !found {
		t.Errorf("fallback diagnostics %v missing the component-positioned unguarded-start", info.Diagnostics)
	}
}

// TestOTFRoutesCarryNoDiagnostics: an on-the-fly verdict has no
// diagnostics attached even when the inputs would draw findings (the
// token ring's idle stations tau-cycle) — vet rides along only where the
// engine had to fall back.
func TestOTFRoutesCarryNoDiagnostics(t *testing.T) {
	c := New()
	_, info, err := c.CheckNetworkOTFInfo(context.Background(), gen.TokenRing(3), gen.TokenRingSpec(), Weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !info.OnTheFly {
		t.Fatalf("token ring fell back: %s", info.Fallback)
	}
	if len(info.Diagnostics) != 0 {
		t.Errorf("on-the-fly verdict carries diagnostics: %v", info.Diagnostics)
	}
}
