package engine

import (
	"context"
	"strings"
	"testing"

	"ccs/internal/fsp"
)

// malformed returns an *fsp.FSP that panics deep inside any algorithm: the
// exported zero value has no states, no alphabet and no variable table, so
// the first accessor dereference blows up. It stands in for any process
// that violates the builder's invariants.
func malformed() *fsp.FSP { return &fsp.FSP{} }

func parseOrDie(t *testing.T, text string) *fsp.FSP {
	t.Helper()
	p, err := fsp.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const twoChainText = `fsp aa
states 3
start 0
ext 0 x
ext 1 x
ext 2 x
arc 0 a 1
arc 1 a 2
`

// TestCheckRecoversPanics: a malformed process must surface as the query's
// error, never as a crash, for every relation.
func TestCheckRecoversPanics(t *testing.T) {
	c := New()
	good := parseOrDie(t, twoChainText)
	ctx := context.Background()
	for _, rel := range []Relation{Strong, Weak, Trace, Failure, Congruence, Simulation, K, Limited} {
		if _, err := c.Check(ctx, Query{P: malformed(), Q: good, Rel: rel, K: 1}); err == nil {
			t.Errorf("%v: malformed P produced no error", rel)
		}
		if _, err := c.Check(ctx, Query{P: good, Q: malformed(), Rel: rel, K: 1}); err == nil {
			t.Errorf("%v: malformed Q produced no error", rel)
		}
	}
	// The checker must remain usable afterwards.
	if eq, err := c.Check(ctx, Query{P: good, Q: good, Rel: Weak}); err != nil || !eq {
		t.Fatalf("checker poisoned after panic recovery: eq=%v err=%v", eq, err)
	}
}

// TestCheckAllDrainsPastPanic is the batch contract of the issue: one
// malformed process in a batch yields an errored Result for that query
// while every other query completes with a verdict.
func TestCheckAllDrainsPastPanic(t *testing.T) {
	c := New()
	good := parseOrDie(t, twoChainText)
	same := parseOrDie(t, twoChainText)
	queries := []Query{
		{P: good, Q: same, Rel: Strong},
		{P: malformed(), Q: good, Rel: Weak},
		{P: good, Q: same, Rel: Weak},
		{P: malformed(), Q: malformed(), Rel: Strong},
		{P: good, Q: same, Rel: Trace},
	}
	results := c.CheckAll(context.Background(), queries, 2)
	for i, r := range results {
		bad := i == 1 || i == 3
		if bad && r.Err == nil {
			t.Errorf("query %d: malformed process produced no error", i)
		}
		if !bad {
			if r.Err != nil {
				t.Errorf("query %d: unexpected error: %v", i, r.Err)
			} else if !r.Equivalent {
				t.Errorf("query %d: want equivalent", i)
			}
		}
	}
}

// TestStructuralCacheSharing is the regression test for the
// pointer-identity cache bug: parsing the same process text twice must not
// double every artifact.
func TestStructuralCacheSharing(t *testing.T) {
	c := New()
	p1 := parseOrDie(t, twoChainText)
	p2 := parseOrDie(t, twoChainText)
	other := parseOrDie(t, strings.Replace(twoChainText, "arc 1 a 2", "arc 1 b 2", 1))
	ctx := context.Background()
	if _, err := c.Check(ctx, Query{P: p1, Q: other, Rel: Weak}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Check(ctx, Query{P: p2, Q: other, Rel: Weak}); err != nil {
		t.Fatal(err)
	}
	// p1 and p2 are structurally one process: the cache must hold exactly
	// four canonical records — the chain, `other`, and their two
	// ≈-quotients (quotients enter the cache when the pair check indexes
	// them). Without structural sharing the chain and its artifacts would
	// be derived twice.
	if got := c.Processes(); got != 4 {
		t.Errorf("cache holds %d canonical processes, want 4 (structural sharing)", got)
	}
	// And the shared record really carries the artifacts: deriving via p2
	// must return the identical quotient pointer computed via p1.
	q1, err := c.WeakQuotient(p1)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.WeakQuotient(p2)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("structurally equal processes did not share the cached quotient")
	}
}
