package engine

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"ccs/internal/compose"
	"ccs/internal/fsp"
	"ccs/internal/gen"
)

// TestCheckNetworkOTFAgainstCheckNetwork: the on-the-fly route (with its
// internal fallback) must agree with minimize-then-compose on the random
// network suite for every relation, whether or not the spec is eligible
// for the game — and the game must actually run for a healthy share of
// the eligible cases.
func TestCheckNetworkOTFAgainstCheckNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ctx := context.Background()
	rels := []Relation{Strong, Weak, Trace, Congruence, Simulation, K, Limited}
	onTheFly := 0
	for i := 0; i < 15; i++ {
		net := gen.RandomNetwork(rng)
		specs := []*fsp.FSP{
			gen.Random(rng, 2+rng.Intn(4), 5, 3, 0.3),      // usually ineligible: exercises the fallback
			gen.RandomDeterministic(rng, 2+rng.Intn(4), 2), // eligible: exercises the game
		}
		c := New()
		for _, rel := range rels {
			for _, spec := range specs {
				want, err := c.CheckNetwork(ctx, net, spec, rel, 2)
				if err != nil {
					t.Fatal(err)
				}
				got, info, err := c.CheckNetworkOTFInfo(ctx, net, spec, rel, 2)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("net %d rel %v: OTF=%v (onTheFly=%v) MTC=%v", i, rel, got, info.OnTheFly, want)
				}
				if info.OnTheFly {
					onTheFly++
					if info.Fallback != "" {
						t.Errorf("net %d rel %v: on-the-fly verdict carries fallback reason %q", i, rel, info.Fallback)
					}
				} else if info.Fallback == "" {
					t.Errorf("net %d rel %v: fallback without a reason", i, rel)
				}
			}
		}
	}
	if onTheFly < 20 {
		t.Fatalf("the game decided only %d queries; the differential suite barely exercises it", onTheFly)
	}
}

// TestCheckNetworkOTFGallery: every gallery exhibit is playable by the
// game itself (no fallback) — the classic entries directly, the
// nondet-spec family through the determinized subset route — and must
// reproduce the expected verdicts.
func TestCheckNetworkOTFGallery(t *testing.T) {
	ctx := context.Background()
	c := New()
	for _, entry := range gen.NetworkGallery() {
		got, info, err := c.CheckNetworkOTFInfo(ctx, entry.Net, entry.Spec, Weak, 0)
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if !info.OnTheFly {
			t.Errorf("%s: fell back (%s); gallery specs are playable by construction", entry.Name, info.Fallback)
		}
		if info.OnTheFly && info.Route != RouteOTF && info.Route != RouteOTFDeterminized {
			t.Errorf("%s: on-the-fly verdict with route %q", entry.Name, info.Route)
		}
		if strings.HasSuffix(entry.Name, "-nondet-spec") && info.OnTheFly && info.Route != RouteOTFDeterminized {
			t.Errorf("%s: want the determinized route, got %q", entry.Name, info.Route)
		}
		if got != entry.Weak {
			t.Errorf("%s: OTF ≈ = %v, want %v", entry.Name, got, entry.Weak)
		}
		if !entry.Weak && info.OnTheFly && info.CounterexampleReason == "" {
			t.Errorf("%s: inequivalent without a counterexample reason", entry.Name)
		}
		if !entry.Weak && len(info.Counterexample) == 0 && info.OnTheFly {
			// The buggy exhibits need at least one action before the
			// mismatch; an empty trace means the game blamed the root.
			if !strings.HasPrefix(entry.Name, "lossy-relay-3") {
				t.Errorf("%s: inequivalent without a trace", entry.Name)
			}
		}
	}
}

// TestCheckNetworkOTFEarlyExit is the tentpole acceptance property: the
// buggy token ring is decided while visiting under 10%% of the flat
// product's states. The flat product is exponential in the ring size (the
// idle stations churn independently); the game, running on the cached
// component quotients, prunes the churn and stops at the first drop.
func TestCheckNetworkOTFEarlyExit(t *testing.T) {
	const n = 8
	net := gen.BuggyTokenRing(n)
	idx, _, err := net.Index()
	if err != nil {
		t.Fatal(err)
	}
	flatStates := idx.N()

	c := New()
	eq, info, err := c.CheckNetworkOTFInfo(context.Background(), net, gen.TokenRingSpec(), Weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("buggy token ring accepted")
	}
	if !info.OnTheFly {
		t.Fatalf("fell back to minimize-then-compose: %s", info.Fallback)
	}
	if info.Pairs*10 >= flatStates {
		t.Errorf("game visited %d pairs, flat product has %d states: want < 10%%", info.Pairs, flatStates)
	}
	if len(info.Counterexample) == 0 {
		t.Error("no distinguishing trace for the buggy ring")
	}
	t.Logf("flat product %d states; game stopped after %d pairs (%d explored), trace %v",
		flatStates, info.Pairs, info.Explored, info.Counterexample)
}

// TestCheckNetworkOTFRoutes pins the route-reporting contract: a
// deterministic spec goes "otf", a determinate nondeterministic spec
// goes "otf-determinized", essential nondeterminism and uncovered
// relations go "mtc-fallback" with the reason on record — never
// silently.
func TestCheckNetworkOTFRoutes(t *testing.T) {
	ctx := context.Background()
	c := New()
	net := gen.TokenRing(3)

	_, info, err := c.CheckNetworkOTFInfo(ctx, net, gen.TokenRingSpec(), Weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Route != RouteOTF || !info.OnTheFly {
		t.Errorf("deterministic spec: route %q onTheFly %v, want %q", info.Route, info.OnTheFly, RouteOTF)
	}

	_, info, err = c.CheckNetworkOTFInfo(ctx, net, gen.NondetTokenRingSpec(), Weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Route != RouteOTFDeterminized || !info.OnTheFly {
		t.Errorf("determinate nondet spec: route %q onTheFly %v, want %q", info.Route, info.OnTheFly, RouteOTFDeterminized)
	}
	if info.Fallback != "" {
		t.Errorf("on-the-fly verdict carries fallback reason %q", info.Fallback)
	}

	// Essential nondeterminism: a.b + a.c as the spec of a network that
	// actually performs "a" (a lazy game never builds subsets the
	// product does not exercise). The game refuses, the engine falls
	// back, and the reason is on record.
	essential := fsp.NewBuilder("a.b+a.c")
	essential.AddStates(5)
	essential.ArcName(0, "a", 1)
	essential.ArcName(0, "a", 2)
	essential.ArcName(1, "b", 3)
	essential.ArcName(2, "c", 4)
	for s := 0; s < 5; s++ {
		essential.Accept(fsp.State(s))
	}
	espec := essential.MustBuild()
	branch := fsp.NewBuilder("a.(b+c)")
	branch.AddStates(3)
	branch.ArcName(0, "a", 1)
	branch.ArcName(1, "b", 2)
	branch.ArcName(1, "c", 2)
	for s := 0; s < 3; s++ {
		branch.Accept(fsp.State(s))
	}
	enet := compose.New("trap", branch.MustBuild())
	got, info, err := c.CheckNetworkOTFInfo(ctx, enet, espec, Weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Route != RouteMTCFallback || info.OnTheFly {
		t.Errorf("essential nondeterminism: route %q onTheFly %v, want %q", info.Route, info.OnTheFly, RouteMTCFallback)
	}
	if info.Fallback == "" {
		t.Error("fallback without a reason")
	}
	want, err := c.CheckNetwork(ctx, enet, espec, Weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("fallback verdict %v disagrees with CheckNetwork %v", got, want)
	}

	_, info, err = c.CheckNetworkOTFInfo(ctx, net, gen.TokenRingSpec(), Trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Route != RouteMTCFallback || info.Fallback == "" {
		t.Errorf("uncovered relation: route %q fallback %q", info.Route, info.Fallback)
	}
}

// TestCheckNetworkOTFDeterminizedEarlyExit: the tentpole acceptance
// property on the nondeterministic observer — a tau-bearing spec PR 4
// rejected outright is decided on the fly, still under 10%% of the flat
// product, with a visible counterexample.
func TestCheckNetworkOTFDeterminizedEarlyExit(t *testing.T) {
	const n = 8
	net := gen.BuggyTokenRing(n)
	idx, _, err := net.Index()
	if err != nil {
		t.Fatal(err)
	}
	flatStates := idx.N()

	c := New()
	eq, info, err := c.CheckNetworkOTFInfo(context.Background(), net, gen.NondetTokenRingSpec(), Weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("buggy token ring accepted")
	}
	if info.Route != RouteOTFDeterminized {
		t.Fatalf("route %q (fallback: %s), want %q", info.Route, info.Fallback, RouteOTFDeterminized)
	}
	if info.Pairs*10 >= flatStates {
		t.Errorf("game visited %d pairs, flat product has %d states: want < 10%%", info.Pairs, flatStates)
	}
	if info.CounterexampleReason == "" || info.CounterexampleString() == "" {
		t.Error("no distinguishing counterexample for the buggy ring")
	}
	t.Logf("flat product %d states; determinized game stopped after %d pairs (%d explored, %d subsets): %s",
		flatStates, info.Pairs, info.Explored, info.SpecSubsets, info.CounterexampleString())
}

// TestCheckNetworkOTFConcurrent hammers one Checker with parallel OTF
// queries over shared components, for the race detector: the artifact
// cache and the game's sharded tables must tolerate concurrent use.
func TestCheckNetworkOTFConcurrent(t *testing.T) {
	c := New()
	ctx := context.Background()
	entries := gen.NetworkGallery()
	var wg sync.WaitGroup
	errs := make(chan error, 4*len(entries))
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, entry := range entries {
				got, err := c.CheckNetworkOTF(ctx, entry.Net, entry.Spec, Weak, 0)
				if err != nil {
					errs <- err
					continue
				}
				if got != entry.Weak {
					t.Errorf("%s: concurrent OTF = %v, want %v", entry.Name, got, entry.Weak)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCheckNetworkOTFErrors mirrors TestCheckNetworkErrors for the OTF
// entry point: malformed inputs error, never panic.
func TestCheckNetworkOTFErrors(t *testing.T) {
	c := New()
	ctx := context.Background()
	spec := gen.CounterSpec(2)
	if _, err := c.CheckNetworkOTF(ctx, gen.RelayNetwork(2, 1), nil, Weak, 0); err == nil {
		t.Error("nil spec produced no error")
	}
	if _, err := c.CheckNetworkOTF(ctx, gen.RelayNetwork(2, 1), spec, Relation(99), 0); err == nil {
		t.Error("unknown relation produced no error")
	}
	bad := gen.RelayNetwork(2, 1)
	bad.Components = nil
	if _, err := c.CheckNetworkOTF(ctx, bad, spec, Weak, 0); err == nil {
		t.Error("empty network produced no error")
	}
}
