package engine

import (
	"context"
	"strings"
	"testing"

	"ccs/internal/gen"
)

// TestProtocolGalleryRoutes runs the distributed-protocols gallery — the
// sync-vector workloads — through both engine pipelines: CheckNetwork
// (minimize-then-compose) and CheckNetworkOTFInfo (the on-the-fly game)
// must agree with the gallery verdict on every entry, the deterministic
// specs must take the direct otf route and the nondeterministic observers
// the determinized one, and no entry may silently fall back to MTC. This
// is the engine-level otf-vs-MTC agreement differential for vector
// composition, and it exercises MinimizeNetwork's sync-table copy: were
// the table dropped, the quotiented quorum could never rendezvous and
// every positive entry would flip.
func TestProtocolGalleryRoutes(t *testing.T) {
	ctx := context.Background()
	for _, e := range gen.ProtocolGallery() {
		c := New()
		mtc, err := c.CheckNetwork(ctx, e.Net, e.Spec, Weak, 0)
		if err != nil {
			t.Fatalf("%s mtc: %v", e.Name, err)
		}
		if mtc != e.Weak {
			t.Errorf("%s: minimize-then-compose says %v, want %v", e.Name, mtc, e.Weak)
		}
		otfEq, info, err := c.CheckNetworkOTFInfo(ctx, e.Net, e.Spec, Weak, 0)
		if err != nil {
			t.Fatalf("%s otf: %v", e.Name, err)
		}
		if otfEq != e.Weak {
			t.Errorf("%s: on-the-fly says %v, want %v (route %s, fallback %q)",
				e.Name, otfEq, e.Weak, info.Route, info.Fallback)
		}
		wantRoute := RouteOTF
		if strings.HasSuffix(e.Name, "-nondet-spec") {
			wantRoute = RouteOTFDeterminized
		}
		if info.Route != wantRoute {
			t.Errorf("%s: route %s (fallback %q), want %s", e.Name, info.Route, info.Fallback, wantRoute)
		}
		if !e.Weak && info.CounterexampleReason == "" {
			t.Errorf("%s: negative verdict without a counterexample", e.Name)
		}
	}
}

// TestMinimizeNetworkKeepsSync: the minimized copy must carry the
// synchronization table — dropping it would silently strip every
// rendezvous from the quotiented network.
func TestMinimizeNetworkKeepsSync(t *testing.T) {
	c := New()
	net := gen.ByzantineQuorum(4, 1, 1)
	min, err := c.MinimizeNetwork(context.Background(), net, Weak)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Sync) != len(net.Sync) {
		t.Fatalf("minimized network has %d sync rules, want %d", len(min.Sync), len(net.Sync))
	}
	for i, r := range min.Sync {
		if r.String() != net.Sync[i].String() {
			t.Errorf("rule %d changed: %s != %s", i, r, net.Sync[i])
		}
	}
}
