package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"ccs/internal/gen"
	"ccs/internal/obs"
)

// pollCtx counts Err() calls and trips after a budget, proving a path
// polls its context repeatedly rather than only at entry (the PR 6 gap).
type pollCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *pollCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestCheckNetworkCancelsMidRun: the minimize-then-compose path must
// observe cancellation between component quotients and inside the
// product walk — not just at CheckNetwork entry.
func TestCheckNetworkCancelsMidRun(t *testing.T) {
	net := gen.TokenRing(8)
	spec := gen.TokenRingSpec()
	c := New()

	ctx := &pollCtx{Context: context.Background(), after: 2}
	if _, err := c.CheckNetwork(ctx, net, spec, Weak, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("CheckNetwork error = %v, want context.Canceled", err)
	}
	if got := ctx.calls.Load(); got < 3 {
		t.Fatalf("context polled %d times, want >= 3 (per-component polling)", got)
	}

	// The same query under a live context completes.
	eq, err := c.CheckNetwork(context.Background(), net, spec, Weak, 0)
	if err != nil {
		t.Fatalf("uncancelled CheckNetwork: %v", err)
	}
	if !eq {
		t.Fatalf("token ring not weakly equivalent to its spec")
	}
}

// TestCheckStagePolls: the pair path polls between the quotient and
// solve phases. A budget that survives the entry poll and the quotient
// phase must still get the query cancelled before the solve.
func TestCheckStagePolls(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := gen.Random(rng, 40, 5, 3, 0.3)
	q := gen.Random(rng, 40, 5, 3, 0.3)
	c := New()
	ctx := &pollCtx{Context: context.Background(), after: 1}
	if _, err := c.Check(ctx, Query{P: p, Q: q, Rel: Weak}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Check error = %v, want context.Canceled", err)
	}
	if got := ctx.calls.Load(); got < 2 {
		t.Fatalf("context polled %d times, want >= 2 (stage polling)", got)
	}
}

// TestNetworkTraceSpans: a traced network query records the quotient and
// exploration phases with their route attributes, and the spans carry
// positive, ordered offsets.
func TestNetworkTraceSpans(t *testing.T) {
	net := gen.TokenRing(6)
	spec := gen.TokenRingSpec()
	c := New()

	tr := obs.NewTrace("")
	ctx := obs.WithTrace(context.Background(), tr)
	eq, info, err := c.CheckNetworkOTFInfo(ctx, net, spec, Weak, 0)
	if err != nil {
		t.Fatalf("CheckNetworkOTFInfo: %v", err)
	}
	if !eq || !info.OnTheFly {
		t.Fatalf("eq=%v route=%q, want on-the-fly equivalence", eq, info.Route)
	}
	phases := map[string]bool{}
	for _, sp := range tr.Spans() {
		phases[sp.Phase] = true
		if sp.Duration < 0 || sp.Start < 0 {
			t.Fatalf("span %q has negative timing", sp.Phase)
		}
	}
	for _, want := range []string{"quotient", "otf-explore"} {
		if !phases[want] {
			t.Fatalf("missing %q span; got %v", want, phases)
		}
	}
}
