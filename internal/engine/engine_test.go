package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ccs/internal/core"
	"ccs/internal/failures"
	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/kequiv"
	"ccs/internal/simulation"
)

func buildTauA() *fsp.FSP {
	b := fsp.NewBuilder("tau.a")
	b.AddStates(3)
	b.ArcName(0, fsp.TauName, 1)
	b.ArcName(1, "a", 2)
	return b.MustBuild()
}

func buildA() *fsp.FSP {
	b := fsp.NewBuilder("a")
	b.AddStates(2)
	b.ArcName(0, "a", 1)
	return b.MustBuild()
}

func TestCheckKnownPairs(t *testing.T) {
	tauA, a := buildTauA(), buildA()
	ctx := context.Background()
	c := New()
	cases := []struct {
		rel  Relation
		k    int
		want bool
	}{
		{Strong, 0, false},     // tau.a has a tau move a cannot match
		{Weak, 0, true},        // Milner's tau law
		{Trace, 0, true},       // weak implies trace
		{Congruence, 0, false}, // the classic root-condition separation
		{K, 2, true},
		{Limited, 2, true},
	}
	for _, tc := range cases {
		got, err := c.Check(ctx, Query{P: tauA, Q: a, Rel: tc.rel, K: tc.k})
		if err != nil {
			t.Fatalf("%v: %v", tc.rel, err)
		}
		if got != tc.want {
			t.Errorf("tau.a vs a under %v = %v, want %v", tc.rel, got, tc.want)
		}
	}
}

func TestCheckReflexive(t *testing.T) {
	p := buildTauA()
	c := New()
	for _, rel := range []Relation{Strong, Weak, Trace, Congruence, Simulation, K, Limited} {
		eq, err := c.Check(context.Background(), Query{P: p, Q: p, Rel: rel, K: 3})
		if err != nil {
			t.Fatalf("%v: %v", rel, err)
		}
		if !eq {
			t.Errorf("%v must be reflexive", rel)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	c := New()
	ctx := context.Background()
	if _, err := c.Check(ctx, Query{P: nil, Q: buildA(), Rel: Strong}); err == nil {
		t.Error("nil process must error")
	}
	if _, err := c.Check(ctx, Query{P: buildA(), Q: buildA(), Rel: Relation(99)}); err == nil {
		t.Error("unknown relation must error")
	}
}

// TestCheckMatchesDirect cross-checks every cached relation against the
// one-shot implementations on random tau-rich processes.
func TestCheckMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := New()
	ctx := context.Background()
	var procs []*fsp.FSP
	for i := 0; i < 6; i++ {
		procs = append(procs, gen.Random(rng, 12+rng.Intn(12), 40, 2, 0.4))
	}
	for i, p := range procs {
		for j, q := range procs {
			for _, rel := range []Relation{Strong, Weak, Trace, Simulation, Congruence, K, Limited} {
				got, err := c.Check(ctx, Query{P: p, Q: q, Rel: rel, K: 2})
				if err != nil {
					t.Fatalf("engine %v(%d,%d): %v", rel, i, j, err)
				}
				var want bool
				switch rel {
				case Strong:
					want, err = core.StrongEquivalent(p, q)
				case Weak:
					want, err = core.WeakEquivalent(p, q)
				case Trace:
					want, err = kequiv.Equivalent(p, q, 1)
				case Simulation:
					want, err = simulation.Equivalent(p, q)
				case Congruence:
					want, err = core.ObservationCongruent(p, q)
				case K:
					want, err = kequiv.Equivalent(p, q, 2)
				case Limited:
					var u *fsp.FSP
					var off fsp.State
					u, off, err = fsp.DisjointUnion(p, q)
					if err == nil {
						want, err = core.LimitedEquivalentStates(u, p.Start(), off+q.Start(), 2)
					}
				}
				if err != nil {
					t.Fatalf("direct %v(%d,%d): %v", rel, i, j, err)
				}
				if got != want {
					t.Errorf("%v(%d,%d): engine=%v direct=%v", rel, i, j, got, want)
				}
			}
		}
	}
}

func TestCheckFailureRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := New()
	ctx := context.Background()
	for trial := 0; trial < 5; trial++ {
		p := gen.RandomRestricted(rng, 10, 30, 2)
		q := gen.RandomRestricted(rng, 10, 30, 2)
		got, err := c.Check(ctx, Query{P: p, Q: q, Rel: Failure})
		if err != nil {
			t.Fatalf("engine failure: %v", err)
		}
		want, _, err := failures.Equivalent(p, q)
		if err != nil {
			t.Fatalf("direct failure: %v", err)
		}
		if got != want {
			t.Errorf("failure trial %d: engine=%v direct=%v", trial, got, want)
		}
	}
}

func TestArtifactsMemoized(t *testing.T) {
	p := buildTauA()
	c := New()
	s1, eps1, err := c.Saturated(p)
	if err != nil {
		t.Fatal(err)
	}
	s2, eps2, err := c.Saturated(p)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || eps1 != eps2 {
		t.Error("Saturated must return the memoized artifact")
	}
	m1, err := c.WeakQuotient(p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.WeakQuotient(p)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("WeakQuotient must return the memoized artifact")
	}
	if got := c.Processes(); got != 1 {
		t.Errorf("Processes = %d, want 1", got)
	}
}

func TestCheckAllOrderAndTimings(t *testing.T) {
	tauA, a := buildTauA(), buildA()
	queries := []Query{
		{P: tauA, Q: a, Rel: Weak},
		{P: tauA, Q: a, Rel: Strong},
		{P: a, Q: a, Rel: Strong},
	}
	for _, workers := range []int{0, 1, 2, 17} {
		res := New().CheckAll(context.Background(), queries, workers)
		if len(res) != len(queries) {
			t.Fatalf("workers=%d: %d results", workers, len(res))
		}
		want := []bool{true, false, true}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("workers=%d query %d: %v", workers, i, r.Err)
			}
			if r.Index != i {
				t.Errorf("workers=%d: result %d has index %d", workers, i, r.Index)
			}
			if r.Equivalent != want[i] {
				t.Errorf("workers=%d query %d = %v, want %v", workers, i, r.Equivalent, want[i])
			}
			if r.Elapsed < 0 {
				t.Errorf("workers=%d query %d: negative elapsed", workers, i)
			}
		}
	}
}

func TestCheckAllEmpty(t *testing.T) {
	if res := New().CheckAll(context.Background(), nil, 4); len(res) != 0 {
		t.Errorf("empty batch returned %d results", len(res))
	}
}

func TestCheckAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tauA, a := buildTauA(), buildA()
	res := New().CheckAll(ctx, []Query{{P: tauA, Q: a, Rel: Weak}, {P: a, Q: a, Rel: Strong}}, 2)
	for i, r := range res {
		if r.Err == nil {
			t.Errorf("query %d: want context error, got verdict %v", i, r.Equivalent)
		}
	}
}

// TestCheckAllConcurrentSharedCache hammers one Checker from many workers
// over a small shared process pool so the race detector can see the cache
// paths: the artifacts map, the per-artifact sync.Once fields, and result
// slot writes.
func TestCheckAllConcurrentSharedCache(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var procs []*fsp.FSP
	for i := 0; i < 4; i++ {
		procs = append(procs, gen.Random(rng, 20, 60, 2, 0.3))
	}
	var queries []Query
	rels := []Relation{Strong, Weak, Trace, Simulation}
	for i := 0; i < 64; i++ {
		queries = append(queries, Query{
			P:   procs[rng.Intn(len(procs))],
			Q:   procs[rng.Intn(len(procs))],
			Rel: rels[i%len(rels)],
		})
	}
	c := New()
	res := c.CheckAll(context.Background(), queries, 8)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
	}
	// A second pass over the warmed cache must agree verdict for verdict.
	res2 := c.CheckAll(context.Background(), queries, 8)
	for i := range res {
		if res[i].Equivalent != res2[i].Equivalent {
			t.Errorf("query %d: cold=%v warm=%v", i, res[i].Equivalent, res2[i].Equivalent)
		}
	}
	// The cache composes: the weak path re-enters it with the quotient
	// processes, so entries >= the distinct inputs.
	if got := c.Processes(); got < len(procs) {
		t.Errorf("Processes = %d, want >= %d", got, len(procs))
	}
}

// TestConcurrentArtifactAccess drives the artifact accessors themselves
// from many goroutines.
func TestConcurrentArtifactAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := gen.Random(rng, 30, 90, 2, 0.4)
	c := New()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 4 {
			case 0:
				c.Closure(p)
			case 1:
				if _, _, err := c.Saturated(p); err != nil {
					errs <- err
				}
			case 2:
				if _, err := c.StrongQuotient(p); err != nil {
					errs <- err
				}
			case 3:
				if _, err := c.WeakQuotient(p); err != nil {
					errs <- err
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRelationString(t *testing.T) {
	for rel, want := range map[Relation]string{
		Strong: "strong", Weak: "weak", Trace: "trace", Failure: "failure",
		Congruence: "congruence", Simulation: "simulation",
		K: "k-observational", Limited: "k-limited", Relation(0): "unknown",
	} {
		if got := rel.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", rel, got, want)
		}
	}
}

func BenchmarkCheckAllWeak(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var procs []*fsp.FSP
	for i := 0; i < 8; i++ {
		procs = append(procs, gen.Random(rng, 64, 256, 2, 0.3))
	}
	var queries []Query
	for i := 0; i < 50; i++ {
		queries = append(queries, Query{
			P:   procs[rng.Intn(len(procs))],
			Q:   procs[rng.Intn(len(procs))],
			Rel: Weak,
		})
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := New().CheckAll(context.Background(), queries, workers)
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
