package engine

import (
	"context"
	"math/rand"
	"testing"

	"ccs/internal/compose"
	"ccs/internal/core"
	"ccs/internal/fsp"
	"ccs/internal/gen"
)

// TestCheckNetworkAgainstFlat: engine network verdicts must match the
// direct check on the flat product for every supported relation, across
// the random network generator. This is the engine-level half of the
// minimize-then-compose/compose-then-minimize agreement property (the
// core-level half lives in internal/compose).
func TestCheckNetworkAgainstFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ctx := context.Background()
	rels := []Relation{Strong, Weak, Trace, Congruence, Simulation, K, Limited}
	for i := 0; i < 15; i++ {
		net := gen.RandomNetwork(rng)
		flat, err := net.FSP()
		if err != nil {
			t.Fatal(err)
		}
		spec := gen.Random(rng, 2+rng.Intn(4), 5, 3, 0.3)
		c := New()
		for _, rel := range rels {
			want, err := c.Check(ctx, Query{P: flat, Q: spec, Rel: rel, K: 2})
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.CheckNetwork(ctx, net, spec, rel, 2)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("net %d rel %v: CheckNetwork=%v, flat=%v", i, rel, got, want)
			}
		}
	}
}

// TestCheckNetworkComponentReuse: components shared across networks are
// quotiented once — the per-component artifact reuse the pipeline exists
// for. The relay network uses one cell pointer n times, plus the composed
// product and the spec.
func TestCheckNetworkComponentReuse(t *testing.T) {
	c := New()
	net := gen.RelayNetwork(4, 2)
	spec := gen.CounterSpec(4)
	ctx := context.Background()
	eq, err := c.CheckNetwork(ctx, net, spec, Weak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("relay-4 not ≈ counter-4")
	}
	// Canonical records: the shared cell (its four instances collapse to
	// one record), the composed minimized product, the spec, and the
	// shared ≈-quotient — product and spec are both ≈-minimal to the same
	// 5-state counter, so structural interning stores that quotient once.
	if got := c.Processes(); got != 4 {
		t.Errorf("cache holds %d canonical processes, want 4 (cell, product, spec, shared quotient)", got)
	}
	// A second identical check recomposes the product, but structural
	// interning maps it onto the cached record: no growth.
	if _, err := c.CheckNetwork(ctx, net, spec, Weak, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Processes(); got != 4 {
		t.Errorf("repeat check grew the cache to %d records", got)
	}
}

// TestCheckNetworkErrors: description errors and malformed components are
// reported, never panicked.
func TestCheckNetworkErrors(t *testing.T) {
	c := New()
	ctx := context.Background()
	spec := gen.CounterSpec(2)
	if _, err := c.CheckNetwork(ctx, &compose.Network{Name: "empty"}, spec, Weak, 0); err == nil {
		t.Error("empty network produced no error")
	}
	bad := compose.New("bad", &fsp.FSP{})
	if _, err := c.CheckNetwork(ctx, bad, spec, Weak, 0); err == nil {
		t.Error("malformed component produced no error")
	}
	if _, err := c.CheckNetwork(ctx, gen.RelayNetwork(2, 1), spec, Relation(99), 0); err == nil {
		t.Error("unknown relation produced no error")
	}
}

// TestMinimizeNetworkPreservesShape: relabelings and the hidden set carry
// over, the input is untouched, and each component is the relation-
// appropriate quotient.
func TestMinimizeNetworkPreservesShape(t *testing.T) {
	c := New()
	net := gen.RelayNetwork(3, 2)
	min, err := c.MinimizeNetwork(context.Background(), net, Weak)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Components) != len(net.Components) || len(min.Hidden) != len(net.Hidden) {
		t.Fatal("minimized network changed shape")
	}
	for i := range net.Components {
		if net.Components[i].P == min.Components[i].P {
			t.Errorf("component %d was not replaced by its quotient", i)
		}
		if min.Components[i].Relabel["in"] != net.Components[i].Relabel["in"] {
			t.Errorf("component %d lost its relabeling", i)
		}
		want, _, err := core.QuotientCongruence(net.Components[i].P)
		if err != nil {
			t.Fatal(err)
		}
		if !fsp.StructuralEqual(min.Components[i].P, want) {
			t.Errorf("component %d is not the ≈ᶜ-quotient", i)
		}
	}
	// Strong relations use the finer ~-quotient.
	minStrong, err := c.MinimizeNetwork(context.Background(), net, Strong)
	if err != nil {
		t.Fatal(err)
	}
	cell := net.Components[0].P
	strongQ, err := c.StrongQuotient(cell)
	if err != nil {
		t.Fatal(err)
	}
	if minStrong.Components[0].P != strongQ {
		t.Error("Strong minimization did not use the cached ~-quotient")
	}
}
