// Package engine provides a reusable, concurrent batch equivalence-checking
// engine on top of the single-shot algorithms in core, kequiv, failures and
// simulation.
//
// The two ideas are:
//
//   - Per-process artifact caching. Deciding p ≈ q by Theorem 4.1(a)
//     saturates and partitions from scratch on every call, even when the
//     same process appears in many queries. A Checker derives each
//     process's expensive artifacts — tau-closure, saturated P-hat, the
//     canonical quotients modulo ~ and ≈, and the CSR refinement index
//     (internal/lts) of every process it partitions — exactly once, so a
//     query against an already-seen process pays only a small check on the
//     minimized quotients (valid by transitivity: p ~ min~(p) ⊆ ≈ᶜ,
//     p ≈ min≈(p), and ≈ refines every ≈_k and ≃_k, Propositions 2.2.1 and
//     2.2.3). Pair queries union the cached indexes (lts.DisjointUnion),
//     so a cached process is never re-flattened into an edge list. The one
//     exception is Failure, which runs on the originals so that the
//     restrictedness validation of the one-shot checker is preserved.
//
//   - Batch fan-out. CheckAll spreads a list of (p, q, relation) queries
//     over a worker pool with context.Context cancellation, returning
//     per-pair verdicts and timings.
//
// Processes are immutable (see fsp.FSP), so the cache is keyed by pointer
// identity: pass the same *fsp.FSP value to benefit from reuse.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ccs/internal/core"
	"ccs/internal/failures"
	"ccs/internal/fsp"
	"ccs/internal/kequiv"
	"ccs/internal/lts"
	"ccs/internal/simulation"
)

// Relation selects an equivalence notion for a batch query. It mirrors the
// facade's Table II enumeration; the facade maps its own constants onto
// these.
type Relation int

const (
	// Strong is strong equivalence ~ (Definition 2.2.3).
	Strong Relation = iota + 1
	// Weak is observational equivalence ≈ (Definition 2.2.1).
	Weak
	// Trace is language equivalence ≈_1 (Proposition 2.2.3b).
	Trace
	// Failure is failure equivalence ≡ (Definition 2.2.4).
	Failure
	// Congruence is Milner's observation congruence ≈ᶜ.
	Congruence
	// Simulation is mutual strong similarity.
	Simulation
	// K is the bounded approximant ≈_k; Query.K carries k.
	K
	// Limited is the bounded approximant ≃_k; Query.K carries k.
	Limited
)

func (r Relation) String() string {
	switch r {
	case Strong:
		return "strong"
	case Weak:
		return "weak"
	case Trace:
		return "trace"
	case Failure:
		return "failure"
	case Congruence:
		return "congruence"
	case Simulation:
		return "simulation"
	case K:
		return "k-observational"
	case Limited:
		return "k-limited"
	default:
		return "unknown"
	}
}

// Query is one equivalence question: are the start states of P and Q
// related by Rel? K is the bound for the approximant relations K and
// Limited and is ignored otherwise.
type Query struct {
	P, Q *fsp.FSP
	Rel  Relation
	K    int
}

// Result is the outcome of one Query.
type Result struct {
	// Index is the position of the query in the CheckAll input slice.
	Index int
	// Equivalent is the verdict; meaningful only when Err is nil.
	Equivalent bool
	// Err reports a failed check — malformed input, an unknown relation,
	// or context cancellation before the query ran.
	Err error
	// Elapsed is the wall time this query took inside its worker. Queries
	// skipped by cancellation report zero.
	Elapsed time.Duration
}

// Checker is a concurrency-safe batch equivalence checker with a
// per-process artifact cache. The zero value is not usable; call New.
type Checker struct {
	opts []core.Option

	mu    sync.Mutex
	procs map[*fsp.FSP]*artifacts
}

// New returns an empty Checker. Options (e.g. core.WithAlgorithm) are
// passed through to every partition solve.
func New(opts ...core.Option) *Checker {
	return &Checker{opts: opts, procs: map[*fsp.FSP]*artifacts{}}
}

// artifacts caches the derived forms of one process. Each field group is
// guarded by its own sync.Once so concurrent queries derive it exactly
// once; later queries get the memoized value immediately.
type artifacts struct {
	f *fsp.FSP

	closureOnce sync.Once
	closure     fsp.Closure

	idxOnce sync.Once
	idx     *lts.Index

	satOnce sync.Once
	sat     *fsp.FSP
	satEps  fsp.Action
	satErr  error

	strongOnce sync.Once
	strongMin  *fsp.FSP
	strongErr  error

	weakOnce sync.Once
	weakMin  *fsp.FSP
	weakErr  error
}

// art returns the (possibly fresh) artifact record for p.
func (c *Checker) art(p *fsp.FSP) *artifacts {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.procs[p]
	if !ok {
		a = &artifacts{f: p}
		c.procs[p] = a
	}
	return a
}

// Processes reports how many distinct processes the cache has seen.
func (c *Checker) Processes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.procs)
}

// Closure returns the memoized tau-closure of p.
func (c *Checker) Closure(p *fsp.FSP) fsp.Closure {
	a := c.art(p)
	a.closureOnce.Do(func() { a.closure = fsp.TauClosure(p) })
	return a.closure
}

// Index returns the memoized CSR refinement index of p (core.IndexOf).
// Indexes are immutable, so the one copy serves concurrent queries; pair
// checks combine two cached indexes with lts.DisjointUnion instead of
// re-flattening the processes.
func (c *Checker) Index(p *fsp.FSP) *lts.Index {
	a := c.art(p)
	a.idxOnce.Do(func() { a.idx = core.IndexOf(p) })
	return a.idx
}

// Saturated returns the memoized observable form P-hat of Theorem 4.1(a)
// together with its epsilon action. It builds on the memoized tau-closure,
// so Closure and Saturated share one closure computation.
func (c *Checker) Saturated(p *fsp.FSP) (*fsp.FSP, fsp.Action, error) {
	a := c.art(p)
	a.satOnce.Do(func() { a.sat, a.satEps, a.satErr = fsp.SaturateWith(p, c.Closure(p)) })
	return a.sat, a.satEps, a.satErr
}

// StrongQuotient returns the memoized canonical quotient of p modulo ~.
func (c *Checker) StrongQuotient(p *fsp.FSP) (*fsp.FSP, error) {
	a := c.art(p)
	a.strongOnce.Do(func() { a.strongMin, _, a.strongErr = core.QuotientStrong(p, c.opts...) })
	return a.strongMin, a.strongErr
}

// WeakQuotient returns the memoized canonical quotient of p modulo ≈.
func (c *Checker) WeakQuotient(p *fsp.FSP) (*fsp.FSP, error) {
	a := c.art(p)
	a.weakOnce.Do(func() { a.weakMin, _, a.weakErr = core.QuotientWeak(p, c.opts...) })
	return a.weakMin, a.weakErr
}

// Check answers one query synchronously, consulting and populating the
// artifact cache. A pointer-identical pair short-circuits to true: every
// supported relation is reflexive.
func (c *Checker) Check(ctx context.Context, q Query) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if q.P == nil || q.Q == nil {
		return false, fmt.Errorf("engine: nil process in query")
	}
	if q.P == q.Q {
		switch q.Rel {
		case Strong, Weak, Trace, Congruence, Simulation, K, Limited:
			return true, nil
		case Failure:
			// Reflexive too, but Equivalent validates restrictedness;
			// fall through so malformed inputs still error.
		default:
			return false, fmt.Errorf("engine: unknown relation %d", q.Rel)
		}
	}
	switch q.Rel {
	case Strong:
		minP, minQ, err := c.strongPair(q)
		if err != nil {
			return false, err
		}
		return core.StrongEquivalentIndexed(minP, minQ, c.Index(minP), c.Index(minQ), c.opts...)
	case Weak:
		minP, minQ, err := c.weakPair(q)
		if err != nil {
			return false, err
		}
		// Saturation distributes over disjoint union (the tau-closure of a
		// union is the union of the tau-closures), so p ≈ q reduces to
		// strong equivalence of the cached saturated quotients — no
		// per-pair saturation at all, just one partition solve on the
		// union of the cached P-hat indexes.
		satP, _, err := c.Saturated(minP)
		if err != nil {
			return false, err
		}
		satQ, _, err := c.Saturated(minQ)
		if err != nil {
			return false, err
		}
		return core.StrongEquivalentIndexed(satP, satQ, c.Index(satP), c.Index(satQ), c.opts...)
	case Trace:
		minP, minQ, err := c.weakPair(q)
		if err != nil {
			return false, err
		}
		return kequiv.Equivalent(minP, minQ, 1)
	case K:
		minP, minQ, err := c.weakPair(q)
		if err != nil {
			return false, err
		}
		return kequiv.Equivalent(minP, minQ, q.K)
	case Limited:
		// ≈ refines ≃_k for every k (Proposition 2.2.1c), so the cached
		// ≈-quotients decide ≃_k by transitivity, like Trace and K. The
		// ladder runs on the union of the cached saturated-quotient
		// indexes (saturation distributes over disjoint union).
		minP, minQ, err := c.weakPair(q)
		if err != nil {
			return false, err
		}
		satP, _, err := c.Saturated(minP)
		if err != nil {
			return false, err
		}
		satQ, _, err := c.Saturated(minQ)
		if err != nil {
			return false, err
		}
		return core.LimitedEquivalentSaturated(satP, satQ, c.Index(satP), c.Index(satQ), q.K)
	case Failure:
		// Deliberately uncached: failures.Equivalent validates that both
		// inputs are restricted, and quotienting can erase the evidence
		// (a tau self-loop vanishes inside its class), so the check must
		// see the originals to keep the one-shot error contract.
		eq, _, err := failures.Equivalent(q.P, q.Q)
		return eq, err
	case Congruence:
		// The root condition inspects initial tau moves, which the weak
		// quotient may erase — but the strong quotient preserves them:
		// ~ is contained in ≈ᶜ, so p ≈ᶜ min~(p) and transitivity gives
		// the reduction.
		minP, minQ, err := c.strongPair(q)
		if err != nil {
			return false, err
		}
		return core.ObservationCongruent(minP, minQ, c.opts...)
	case Simulation:
		minP, minQ, err := c.strongPair(q)
		if err != nil {
			return false, err
		}
		return simulation.Equivalent(minP, minQ)
	default:
		return false, fmt.Errorf("engine: unknown relation %d", q.Rel)
	}
}

// strongPair returns the cached ~-quotients of the query's processes.
// p ~ q iff min~(p) ~ min~(q), and mutual similarity is likewise invariant
// under ~-quotienting, so Strong and Simulation queries run on the minima.
func (c *Checker) strongPair(q Query) (*fsp.FSP, *fsp.FSP, error) {
	minP, err := c.StrongQuotient(q.P)
	if err != nil {
		return nil, nil, err
	}
	minQ, err := c.StrongQuotient(q.Q)
	if err != nil {
		return nil, nil, err
	}
	return minP, minQ, nil
}

// weakPair returns the cached ≈-quotients. p ≈ min≈(p), and ≈ refines ≈_k
// for every k (Proposition 2.2.1), so Weak, Trace and K queries all reduce
// to the same pair of minima by transitivity.
func (c *Checker) weakPair(q Query) (*fsp.FSP, *fsp.FSP, error) {
	minP, err := c.WeakQuotient(q.P)
	if err != nil {
		return nil, nil, err
	}
	minQ, err := c.WeakQuotient(q.Q)
	if err != nil {
		return nil, nil, err
	}
	return minP, minQ, nil
}

// PoolSize resolves a requested worker count the way CheckAll does:
// non-positive means GOMAXPROCS, and never more than one worker per query.
func PoolSize(workers, queries int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > queries {
		workers = queries
	}
	return workers
}

// CheckAll fans the queries out over a pool of workers and returns one
// Result per query, in input order. workers <= 0 selects GOMAXPROCS
// workers. Cancelling the context stops new queries from starting
// (in-flight queries run to completion, as the underlying algorithms are
// not interruptible); skipped queries carry the context error.
func (c *Checker) CheckAll(ctx context.Context, queries []Query, workers int) []Result {
	results := make([]Result, len(queries))
	if len(queries) == 0 {
		return results
	}
	workers = PoolSize(workers, len(queries))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(queries) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = Result{Index: i, Err: err}
					continue
				}
				start := time.Now()
				eq, err := c.Check(ctx, queries[i])
				results[i] = Result{
					Index:      i,
					Equivalent: eq,
					Err:        err,
					Elapsed:    time.Since(start),
				}
			}
		}()
	}
	wg.Wait()
	return results
}
