// Package engine provides a reusable, concurrent batch equivalence-checking
// engine on top of the single-shot algorithms in core, kequiv, failures and
// simulation.
//
// The two ideas are:
//
//   - Per-process artifact caching. Deciding p ≈ q by Theorem 4.1(a)
//     saturates and partitions from scratch on every call, even when the
//     same process appears in many queries. A Checker derives each
//     process's expensive artifacts — tau-closure, saturated P-hat, the
//     canonical quotients modulo ~ and ≈, and the CSR refinement index
//     (internal/lts) of every process it partitions — exactly once, so a
//     query against an already-seen process pays only a small check on the
//     minimized quotients (valid by transitivity: p ~ min~(p) ⊆ ≈ᶜ,
//     p ≈ min≈(p), and ≈ refines every ≈_k and ≃_k, Propositions 2.2.1 and
//     2.2.3). Pair queries union the cached indexes (lts.DisjointUnion),
//     so a cached process is never re-flattened into an edge list. The one
//     exception is Failure, which runs on the originals so that the
//     restrictedness validation of the one-shot checker is preserved.
//
//   - Batch fan-out. CheckAll spreads a list of (p, q, relation) queries
//     over a worker pool with context.Context cancellation, returning
//     per-pair verdicts and timings.
//
// Processes are immutable (see fsp.FSP), so the cache is keyed by pointer
// identity first, with a structural-hash fallback (fsp.Fingerprint /
// fsp.StructuralEqual): parsing the same process text twice yields two
// pointers but one set of cached artifacts.
//
// The engine is also network-aware: CheckNetwork decides queries about a
// compose.Network by the minimize-then-compose pipeline — each component
// is replaced by its cached quotient (~ for the strong relations, ≈ᶜ
// otherwise; both are congruences for composition, restriction and
// relabeling) before the product is materialized, so the composed state
// space is built from minimal parts. See internal/compose.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ccs/internal/core"
	"ccs/internal/failures"
	"ccs/internal/fsp"
	"ccs/internal/kequiv"
	"ccs/internal/lts"
	"ccs/internal/obs"
	"ccs/internal/simulation"
	"ccs/internal/store"
)

// Relation selects an equivalence notion for a batch query. It mirrors the
// facade's Table II enumeration; the facade maps its own constants onto
// these.
type Relation int

const (
	// Strong is strong equivalence ~ (Definition 2.2.3).
	Strong Relation = iota + 1
	// Weak is observational equivalence ≈ (Definition 2.2.1).
	Weak
	// Trace is language equivalence ≈_1 (Proposition 2.2.3b).
	Trace
	// Failure is failure equivalence ≡ (Definition 2.2.4).
	Failure
	// Congruence is Milner's observation congruence ≈ᶜ.
	Congruence
	// Simulation is mutual strong similarity.
	Simulation
	// K is the bounded approximant ≈_k; Query.K carries k.
	K
	// Limited is the bounded approximant ≃_k; Query.K carries k.
	Limited
)

func (r Relation) String() string {
	switch r {
	case Strong:
		return "strong"
	case Weak:
		return "weak"
	case Trace:
		return "trace"
	case Failure:
		return "failure"
	case Congruence:
		return "congruence"
	case Simulation:
		return "simulation"
	case K:
		return "k-observational"
	case Limited:
		return "k-limited"
	default:
		return "unknown"
	}
}

// Query is one equivalence question: are the start states of P and Q
// related by Rel? K is the bound for the approximant relations K and
// Limited and is ignored otherwise.
type Query struct {
	P, Q *fsp.FSP
	Rel  Relation
	K    int
}

// Result is the outcome of one Query.
type Result struct {
	// Index is the position of the query in the CheckAll input slice.
	Index int
	// Equivalent is the verdict; meaningful only when Err is nil.
	Equivalent bool
	// Err reports a failed check — malformed input, an unknown relation,
	// or context cancellation before the query ran.
	Err error
	// Elapsed is the wall time this query took inside its worker. Queries
	// skipped by cancellation report zero.
	Elapsed time.Duration
}

// Checker is a concurrency-safe batch equivalence checker with a
// per-process artifact cache. The zero value is not usable; call New.
type Checker struct {
	opts []core.Option
	st   *store.Store // optional persistent tier; nil means memory-only

	mu        sync.Mutex
	procs     map[*fsp.FSP]*artifacts
	byHash    map[uint64][]*artifacts
	canonical int
}

// New returns an empty Checker. Options (e.g. core.WithAlgorithm) are
// passed through to every partition solve.
func New(opts ...core.Option) *Checker {
	return NewWithStore(nil, opts...)
}

// NewWithStore returns a Checker backed by a persistent artifact store: the
// in-memory sync.Once cache stays the first tier, but on a memory miss each
// artifact derivation first consults st (keyed by the process's structural
// fingerprint, guarded by a second independent fingerprint), and every
// freshly derived artifact is spilled back. A nil st is the same as New.
func NewWithStore(st *store.Store, opts ...core.Option) *Checker {
	return &Checker{
		opts:   opts,
		st:     st,
		procs:  map[*fsp.FSP]*artifacts{},
		byHash: map[uint64][]*artifacts{},
	}
}

// Store returns the persistent tier, or nil for a memory-only Checker.
func (c *Checker) Store() *store.Store { return c.st }

// StoreStats reports the persistent tier's counters; ok is false for a
// memory-only Checker.
func (c *Checker) StoreStats() (s store.Stats, ok bool) {
	if c.st == nil {
		return store.Stats{}, false
	}
	return c.st.Stats(), true
}

// artifacts caches the derived forms of one process. Each field group is
// guarded by its own sync.Once so concurrent queries derive it exactly
// once; later queries get the memoized value immediately.
type artifacts struct {
	f *fsp.FSP

	// fp is the structural fingerprint (the store key), computed when the
	// record is created; fp2 is the independent collision-guard hash,
	// derived lazily because it is only needed when a store is attached.
	fp      uint64
	fp2Once sync.Once
	fp2     uint64

	closureOnce sync.Once
	closure     fsp.Closure

	idxOnce sync.Once
	idx     *lts.Index

	satOnce sync.Once
	sat     *fsp.FSP
	satEps  fsp.Action
	satErr  error

	strongOnce sync.Once
	strongMin  *fsp.FSP
	strongErr  error

	weakOnce sync.Once
	weakMin  *fsp.FSP
	weakErr  error

	congOnce sync.Once
	congMin  *fsp.FSP
	congErr  error
}

// aliasHighWater bounds the pointer-alias entries of c.procs: beyond
// canonical records plus this many aliases, the alias entries are pruned.
// Without the bound, a loop composing the same network forever would
// retain every abandoned composed FSP as a permanent map key; with it, a
// pruned alias merely pays one re-fingerprint on its next use.
const aliasHighWater = 1024

// art returns the (possibly fresh) artifact record for p. The fast path is
// pointer identity; on a miss the structural fingerprint is consulted, so
// a structurally identical process seen under another pointer (the same
// text parsed twice, the same network composed twice) adopts the existing
// record instead of silently doubling every artifact.
func (c *Checker) art(p *fsp.FSP) *artifacts {
	c.mu.Lock()
	if a, ok := c.procs[p]; ok {
		c.mu.Unlock()
		return a
	}
	c.mu.Unlock()
	// Fingerprinting is O(states + arcs) and must not serialize the worker
	// pool; Fingerprint is pure, so concurrent first touches of one
	// pointer at worst hash twice.
	h := fsp.Fingerprint(p)
	c.mu.Lock()
	defer c.mu.Unlock()
	if a, ok := c.procs[p]; ok { // raced with another first touch
		return a
	}
	for _, a := range c.byHash[h] {
		if fsp.StructuralEqual(a.f, p) {
			c.aliasInsert(p, a)
			return a
		}
	}
	a := &artifacts{f: p, fp: h}
	c.procs[p] = a
	c.byHash[h] = append(c.byHash[h], a)
	c.canonical++
	return a
}

// aliasInsert maps the alias pointer p onto the canonical record a,
// pruning all alias entries first when they exceed the high-water mark.
// Called with c.mu held.
func (c *Checker) aliasInsert(p *fsp.FSP, a *artifacts) {
	if len(c.procs) >= c.canonical+aliasHighWater {
		for k, rec := range c.procs {
			if k != rec.f {
				delete(c.procs, k)
			}
		}
	}
	c.procs[p] = a
}

// Processes reports how many structurally distinct processes the cache has
// seen (pointer aliases of the same structure count once).
func (c *Checker) Processes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.canonical
}

// keys returns the store key (the structural fingerprint) and the
// collision-guard fingerprint of a's process, deriving the second hash
// lazily: it is only paid on records that actually talk to the store.
func (c *Checker) keys(a *artifacts) (fp, fp2 uint64) {
	a.fp2Once.Do(func() { a.fp2 = fsp.Fingerprint2(a.f) })
	return a.fp, a.fp2
}

// Closure returns the memoized tau-closure of p.
func (c *Checker) Closure(p *fsp.FSP) fsp.Closure {
	a := c.art(p)
	amClosure.req.Inc()
	a.closureOnce.Do(func() {
		if c.st != nil {
			fp, fp2 := c.keys(a)
			if clo, ok := c.st.GetClosure(fp, fp2); ok && clo.NumStates() == p.NumStates() {
				a.closure = clo
				amClosure.storeHit.Inc()
				return
			}
			amClosure.derived.Inc()
			a.closure = fsp.TauClosure(p)
			c.st.PutClosure(fp, fp2, a.closure)
			return
		}
		amClosure.derived.Inc()
		a.closure = fsp.TauClosure(p)
	})
	return a.closure
}

// Index returns the memoized CSR refinement index of p (core.IndexOf).
// Indexes are immutable, so the one copy serves concurrent queries; pair
// checks combine two cached indexes with lts.DisjointUnion instead of
// re-flattening the processes.
func (c *Checker) Index(p *fsp.FSP) *lts.Index {
	a := c.art(p)
	amIndex.req.Inc()
	a.idxOnce.Do(func() {
		if c.st != nil {
			fp, fp2 := c.keys(a)
			if idx, ok := c.st.GetIndex(fp, fp2); ok && idx.N() == p.NumStates() {
				a.idx = idx
				amIndex.storeHit.Inc()
				return
			}
			amIndex.derived.Inc()
			a.idx = core.IndexOf(p)
			c.st.PutIndex(fp, fp2, a.idx)
			return
		}
		amIndex.derived.Inc()
		a.idx = core.IndexOf(p)
	})
	return a.idx
}

// Saturated returns the memoized observable form P-hat of Theorem 4.1(a)
// together with its epsilon action. It builds on the memoized tau-closure,
// so Closure and Saturated share one closure computation. With a store
// attached, a warm hit skips both the closure and the saturation; the
// epsilon action is recovered from the stored form's own alphabet.
func (c *Checker) Saturated(p *fsp.FSP) (*fsp.FSP, fsp.Action, error) {
	a := c.art(p)
	amSat.req.Inc()
	a.satOnce.Do(func() {
		defer derivationGuard(&a.satErr)
		if c.st != nil {
			fp, fp2 := c.keys(a)
			if sat, ok := c.st.GetFSP(fp, fp2, store.KindSaturated); ok {
				if eps, ok := sat.Alphabet().Lookup(fsp.EpsilonName); ok {
					a.sat, a.satEps = sat, eps
					amSat.storeHit.Inc()
					return
				}
				// A saturated form without epsilon is not one; fall
				// through and rebuild (the entry ages out via the LRU).
			}
			amSat.derived.Inc()
			a.sat, a.satEps, a.satErr = fsp.SaturateWith(p, c.Closure(p))
			if a.satErr == nil {
				c.st.PutFSP(fp, fp2, store.KindSaturated, a.sat)
			}
			return
		}
		amSat.derived.Inc()
		a.sat, a.satEps, a.satErr = fsp.SaturateWith(p, c.Closure(p))
	})
	return a.sat, a.satEps, a.satErr
}

// quotient is the common store-tier shape of the three quotient accessors:
// consult the store under kind, else derive and spill.
func (c *Checker) quotient(a *artifacts, kind store.Kind, am artMetrics, derive func() (*fsp.FSP, error)) (*fsp.FSP, error) {
	if c.st != nil {
		fp, fp2 := c.keys(a)
		if min, ok := c.st.GetFSP(fp, fp2, kind); ok {
			am.storeHit.Inc()
			return min, nil
		}
		am.derived.Inc()
		min, err := derive()
		if err == nil {
			c.st.PutFSP(fp, fp2, kind, min)
		}
		return min, err
	}
	am.derived.Inc()
	return derive()
}

// StrongQuotient returns the memoized canonical quotient of p modulo ~.
func (c *Checker) StrongQuotient(p *fsp.FSP) (*fsp.FSP, error) {
	a := c.art(p)
	amStrong.req.Inc()
	a.strongOnce.Do(func() {
		defer derivationGuard(&a.strongErr)
		a.strongMin, a.strongErr = c.quotient(a, store.KindStrongMin, amStrong, func() (*fsp.FSP, error) {
			min, _, err := core.QuotientStrong(p, c.opts...)
			return min, err
		})
	})
	return a.strongMin, a.strongErr
}

// WeakQuotient returns the memoized canonical quotient of p modulo ≈.
func (c *Checker) WeakQuotient(p *fsp.FSP) (*fsp.FSP, error) {
	a := c.art(p)
	amWeak.req.Inc()
	a.weakOnce.Do(func() {
		defer derivationGuard(&a.weakErr)
		a.weakMin, a.weakErr = c.quotient(a, store.KindWeakMin, amWeak, func() (*fsp.FSP, error) {
			min, _, err := core.QuotientWeak(p, c.opts...)
			return min, err
		})
	})
	return a.weakMin, a.weakErr
}

// CongruenceQuotient returns the memoized ≈ᶜ-minimal quotient of p
// (core.QuotientCongruence): one state per ≈-class with the root
// condition restored in place (a root tau self-loop when needed), sound
// to substitute for p inside any network context. The persistent tier
// stores it under KindCongMin, whose codec byte was bumped when the
// quotient went minimal so fresh-root-shaped entries from older stores
// decode as cold misses.
func (c *Checker) CongruenceQuotient(p *fsp.FSP) (*fsp.FSP, error) {
	a := c.art(p)
	amCong.req.Inc()
	a.congOnce.Do(func() {
		defer derivationGuard(&a.congErr)
		a.congMin, a.congErr = c.quotient(a, store.KindCongMin, amCong, func() (*fsp.FSP, error) {
			min, _, err := core.QuotientCongruence(p, c.opts...)
			return min, err
		})
	})
	return a.congMin, a.congErr
}

// derivationGuard converts a panic inside an artifact derivation into a
// stored error. A malformed process (a hand-built zero value, a corrupted
// state index) panics deep inside fsp or lts; sync.Once would mark the
// derivation done anyway, so without this the first caller would crash the
// process and later callers would read a nil artifact. With it, every
// caller of the memoized accessor gets the same error.
func derivationGuard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("engine: artifact derivation panicked: %v", r)
	}
}

// Check answers one query synchronously, consulting and populating the
// artifact cache. A pointer-identical pair short-circuits to true: every
// supported relation is reflexive.
//
// Check never panics: a malformed process that blows up deep inside an
// algorithm (e.g. the out-of-range guards of internal/lts) is caught and
// reported as the query's error, so one bad query in a batch cannot tear
// down the worker pool or the caller's process.
func (c *Checker) Check(ctx context.Context, q Query) (eq bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			eq, err = false, fmt.Errorf("engine: %s query panicked: %v", q.Rel, r)
		}
	}()
	return c.check(ctx, q)
}

func (c *Checker) check(ctx context.Context, q Query) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if q.P == nil || q.Q == nil {
		return false, fmt.Errorf("engine: nil process in query")
	}
	if q.P == q.Q {
		switch q.Rel {
		case Strong, Weak, Trace, Congruence, Simulation, K, Limited:
			return true, nil
		case Failure:
			// Reflexive too, but Equivalent validates restrictedness;
			// fall through so malformed inputs still error.
		default:
			return false, fmt.Errorf("engine: unknown relation %d", q.Rel)
		}
	}
	// Phase spans are flat and sequential — quotient, then (for the weak
	// family) saturate, then solve — so a traced query's span durations
	// sum to roughly its wall time. Between phases the context is polled
	// again: one phase can be a full partition solve, and PR 6 noted that
	// the MTC paths used to poll only at entry.
	tr := obs.TraceFrom(ctx)
	poll := func() error { return ctx.Err() }
	switch q.Rel {
	case Strong:
		sp := tr.Start("quotient")
		minP, minQ, err := c.strongPair(q)
		sp.End(obs.A("kind", "strong"))
		if err != nil {
			return false, err
		}
		if err := poll(); err != nil {
			return false, err
		}
		sp = tr.Start("solve")
		eq, err := core.StrongEquivalentIndexed(minP, minQ, c.Index(minP), c.Index(minQ), c.opts...)
		sp.End(obs.A("relation", "strong"))
		return eq, err
	case Weak:
		sp := tr.Start("quotient")
		minP, minQ, err := c.weakPair(q)
		sp.End(obs.A("kind", "weak"))
		if err != nil {
			return false, err
		}
		if err := poll(); err != nil {
			return false, err
		}
		// Saturation distributes over disjoint union (the tau-closure of a
		// union is the union of the tau-closures), so p ≈ q reduces to
		// strong equivalence of the cached saturated quotients — no
		// per-pair saturation at all, just one partition solve on the
		// union of the cached P-hat indexes.
		sp = tr.Start("saturate")
		satP, _, err := c.Saturated(minP)
		if err != nil {
			sp.End()
			return false, err
		}
		satQ, _, err := c.Saturated(minQ)
		sp.End()
		if err != nil {
			return false, err
		}
		if err := poll(); err != nil {
			return false, err
		}
		sp = tr.Start("solve")
		eq, err := core.StrongEquivalentIndexed(satP, satQ, c.Index(satP), c.Index(satQ), c.opts...)
		sp.End(obs.A("relation", "weak"))
		return eq, err
	case Trace:
		sp := tr.Start("quotient")
		minP, minQ, err := c.weakPair(q)
		sp.End(obs.A("kind", "weak"))
		if err != nil {
			return false, err
		}
		if err := poll(); err != nil {
			return false, err
		}
		sp = tr.Start("solve")
		eq, err := kequiv.Equivalent(minP, minQ, 1)
		sp.End(obs.A("relation", "trace"))
		return eq, err
	case K:
		sp := tr.Start("quotient")
		minP, minQ, err := c.weakPair(q)
		sp.End(obs.A("kind", "weak"))
		if err != nil {
			return false, err
		}
		if err := poll(); err != nil {
			return false, err
		}
		sp = tr.Start("solve")
		eq, err := kequiv.Equivalent(minP, minQ, q.K)
		sp.End(obs.A("relation", "k"))
		return eq, err
	case Limited:
		// ≈ refines ≃_k for every k (Proposition 2.2.1c), so the cached
		// ≈-quotients decide ≃_k by transitivity, like Trace and K. The
		// ladder runs on the union of the cached saturated-quotient
		// indexes (saturation distributes over disjoint union).
		sp := tr.Start("quotient")
		minP, minQ, err := c.weakPair(q)
		sp.End(obs.A("kind", "weak"))
		if err != nil {
			return false, err
		}
		if err := poll(); err != nil {
			return false, err
		}
		sp = tr.Start("saturate")
		satP, _, err := c.Saturated(minP)
		if err != nil {
			sp.End()
			return false, err
		}
		satQ, _, err := c.Saturated(minQ)
		sp.End()
		if err != nil {
			return false, err
		}
		if err := poll(); err != nil {
			return false, err
		}
		sp = tr.Start("solve")
		eq, err := core.LimitedEquivalentSaturated(satP, satQ, c.Index(satP), c.Index(satQ), q.K)
		sp.End(obs.A("relation", "limited"))
		return eq, err
	case Failure:
		// Deliberately uncached: failures.Equivalent validates that both
		// inputs are restricted, and quotienting can erase the evidence
		// (a tau self-loop vanishes inside its class), so the check must
		// see the originals to keep the one-shot error contract.
		sp := tr.Start("solve")
		eq, _, err := failures.Equivalent(q.P, q.Q)
		sp.End(obs.A("relation", "failure"))
		return eq, err
	case Congruence:
		// The root condition inspects initial tau moves, which the weak
		// quotient may erase — but the strong quotient preserves them:
		// ~ is contained in ≈ᶜ, so p ≈ᶜ min~(p) and transitivity gives
		// the reduction.
		sp := tr.Start("quotient")
		minP, minQ, err := c.strongPair(q)
		sp.End(obs.A("kind", "strong"))
		if err != nil {
			return false, err
		}
		if err := poll(); err != nil {
			return false, err
		}
		sp = tr.Start("solve")
		eq, err := core.ObservationCongruent(minP, minQ, c.opts...)
		sp.End(obs.A("relation", "congruence"))
		return eq, err
	case Simulation:
		sp := tr.Start("quotient")
		minP, minQ, err := c.strongPair(q)
		sp.End(obs.A("kind", "strong"))
		if err != nil {
			return false, err
		}
		if err := poll(); err != nil {
			return false, err
		}
		sp = tr.Start("solve")
		eq, err := simulation.Equivalent(minP, minQ)
		sp.End(obs.A("relation", "simulation"))
		return eq, err
	default:
		return false, fmt.Errorf("engine: unknown relation %d", q.Rel)
	}
}

// strongPair returns the cached ~-quotients of the query's processes.
// p ~ q iff min~(p) ~ min~(q), and mutual similarity is likewise invariant
// under ~-quotienting, so Strong and Simulation queries run on the minima.
func (c *Checker) strongPair(q Query) (*fsp.FSP, *fsp.FSP, error) {
	minP, err := c.StrongQuotient(q.P)
	if err != nil {
		return nil, nil, err
	}
	minQ, err := c.StrongQuotient(q.Q)
	if err != nil {
		return nil, nil, err
	}
	return minP, minQ, nil
}

// weakPair returns the cached ≈-quotients. p ≈ min≈(p), and ≈ refines ≈_k
// for every k (Proposition 2.2.1), so Weak, Trace and K queries all reduce
// to the same pair of minima by transitivity.
func (c *Checker) weakPair(q Query) (*fsp.FSP, *fsp.FSP, error) {
	minP, err := c.WeakQuotient(q.P)
	if err != nil {
		return nil, nil, err
	}
	minQ, err := c.WeakQuotient(q.Q)
	if err != nil {
		return nil, nil, err
	}
	return minP, minQ, nil
}

// PoolSize resolves a requested worker count the way CheckAll does:
// non-positive means GOMAXPROCS, and never more than one worker per query.
func PoolSize(workers, queries int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > queries {
		workers = queries
	}
	return workers
}

// CheckAll fans the queries out over a pool of workers and returns one
// Result per query, in input order. workers <= 0 selects GOMAXPROCS
// workers. Cancelling the context stops new queries from starting
// (in-flight queries run to completion, as the underlying algorithms are
// not interruptible); skipped queries carry the context error.
func (c *Checker) CheckAll(ctx context.Context, queries []Query, workers int) []Result {
	results := make([]Result, len(queries))
	if len(queries) == 0 {
		return results
	}
	workers = PoolSize(workers, len(queries))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(queries) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = Result{Index: i, Err: err}
					continue
				}
				start := time.Now()
				eq, err := c.Check(ctx, queries[i])
				results[i] = Result{
					Index:      i,
					Equivalent: eq,
					Err:        err,
					Elapsed:    time.Since(start),
				}
			}
		}()
	}
	wg.Wait()
	return results
}
