package engine

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ccs/internal/fsp"
	"ccs/internal/gen"
	"ccs/internal/store"
)

// corruptAllEntries truncates every entry file in dir to half its length,
// simulating on-disk damage between two store generations.
func corruptAllEntries(t *testing.T, dir string) {
	t.Helper()
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		path := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// TestStoreTierMatchesMemory runs the same random query mix through a
// memory-only Checker, a store-backed cold Checker, and a store-backed
// warm Checker (fresh Checker, same directory), and requires identical
// verdicts from all three. The warm run must be answered substantially
// from the store: no quotient or saturation writes, only reads.
func TestStoreTierMatchesMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var procs []*fsp.FSP
	for i := 0; i < 8; i++ {
		procs = append(procs, gen.Random(rng, 12+rng.Intn(10), 40, 2, 0.4))
	}
	var queries []Query
	for i := range procs {
		for j := range procs {
			for _, rel := range []Relation{Strong, Weak, Trace, Congruence, Simulation} {
				queries = append(queries, Query{P: procs[i], Q: procs[j], Rel: rel})
			}
		}
	}
	ctx := context.Background()
	dir := t.TempDir()

	mem := New()
	cold := NewWithStore(openTestStore(t, dir))
	for _, q := range queries {
		want, err := mem.Check(ctx, q)
		if err != nil {
			t.Fatalf("memory check: %v", err)
		}
		got, err := cold.Check(ctx, q)
		if err != nil {
			t.Fatalf("cold store check: %v", err)
		}
		if got != want {
			t.Fatalf("cold store verdict for %s diverged: got %v want %v", q.Rel, got, want)
		}
	}
	coldStats, ok := cold.StoreStats()
	if !ok || coldStats.Writes == 0 {
		t.Fatalf("cold run spilled nothing: %+v", coldStats)
	}

	// Re-parse nothing: the warm Checker sees the same pointers but has an
	// empty in-memory cache, so every artifact must come off disk.
	warm := NewWithStore(openTestStore(t, dir))
	for _, q := range queries {
		want, err := mem.Check(ctx, q)
		if err != nil {
			t.Fatalf("memory check: %v", err)
		}
		got, err := warm.Check(ctx, q)
		if err != nil {
			t.Fatalf("warm store check: %v", err)
		}
		if got != want {
			t.Fatalf("warm store verdict for %s diverged: got %v want %v", q.Rel, got, want)
		}
	}
	warmStats, _ := warm.StoreStats()
	if warmStats.Hits == 0 {
		t.Fatalf("warm run hit nothing: %+v", warmStats)
	}
	if warmStats.Misses > 0 || warmStats.Writes > 0 {
		t.Fatalf("warm run was not fully warm: %+v", warmStats)
	}
}

// TestStoreTierArtifactIdentity checks that a warm Checker's artifacts are
// structurally identical to freshly derived ones, artifact by artifact.
func TestStoreTierArtifactIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := gen.Random(rng, 25, 80, 3, 0.35)
	dir := t.TempDir()

	cold := NewWithStore(openTestStore(t, dir))
	if _, err := cold.WeakQuotient(p); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.StrongQuotient(p); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.CongruenceQuotient(p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cold.Saturated(p); err != nil {
		t.Fatal(err)
	}
	cold.Closure(p)
	cold.Index(p)

	mem := New()
	warm := NewWithStore(openTestStore(t, dir))

	for _, tc := range []struct {
		name string
		get  func(c *Checker) (*fsp.FSP, error)
	}{
		{"strong", func(c *Checker) (*fsp.FSP, error) { return c.StrongQuotient(p) }},
		{"weak", func(c *Checker) (*fsp.FSP, error) { return c.WeakQuotient(p) }},
		{"cong", func(c *Checker) (*fsp.FSP, error) { return c.CongruenceQuotient(p) }},
		{"sat", func(c *Checker) (*fsp.FSP, error) { f, _, err := c.Saturated(p); return f, err }},
	} {
		want, err := tc.get(mem)
		if err != nil {
			t.Fatalf("%s (memory): %v", tc.name, err)
		}
		got, err := tc.get(warm)
		if err != nil {
			t.Fatalf("%s (warm): %v", tc.name, err)
		}
		if !fsp.StructuralEqual(want, got) {
			t.Fatalf("%s artifact from store differs from fresh derivation", tc.name)
		}
	}
	if n, m := warm.Closure(p).NumStates(), p.NumStates(); n != m {
		t.Fatalf("warm closure has %d states, want %d", n, m)
	}
	if n, m := warm.Index(p).N(), p.NumStates(); n != m {
		t.Fatalf("warm index has %d states, want %d", n, m)
	}
	st, _ := warm.StoreStats()
	if st.Misses > 0 {
		t.Fatalf("warm artifact reads missed: %+v", st)
	}

	// The saturated form's epsilon action must be recovered from the
	// decoded alphabet on a warm hit.
	sat, eps, err := warm.Saturated(p)
	if err != nil {
		t.Fatal(err)
	}
	if name := sat.Alphabet().Name(eps); name != fsp.EpsilonName {
		t.Fatalf("warm saturated epsilon action is %q", name)
	}
}

// TestStoreTierSurvivesCorruption corrupts the store directory between two
// Checkers and requires the second to fall back to deriving, with correct
// verdicts.
func TestStoreTierSurvivesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := gen.Random(rng, 15, 45, 2, 0.4)
	q := gen.Random(rng, 15, 45, 2, 0.4)
	ctx := context.Background()
	dir := t.TempDir()

	cold := NewWithStore(openTestStore(t, dir))
	want, err := cold.Check(ctx, Query{P: p, Q: q, Rel: Weak})
	if err != nil {
		t.Fatal(err)
	}

	corruptAllEntries(t, dir)

	warm := NewWithStore(openTestStore(t, dir))
	got, err := warm.Check(ctx, Query{P: p, Q: q, Rel: Weak})
	if err != nil {
		t.Fatalf("check over corrupt store: %v", err)
	}
	if got != want {
		t.Fatalf("verdict changed over corrupt store: got %v want %v", got, want)
	}
	stats, _ := warm.StoreStats()
	if stats.Misses == 0 {
		t.Fatalf("corrupt entries were not treated as misses: %+v", stats)
	}
}
