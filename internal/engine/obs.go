package engine

import "ccs/internal/obs"

// Per-kind artifact cache telemetry on the default registry. A request
// is one accessor call; a derivation means both the in-memory tier and
// the persistent store missed; a store hit means the persistent tier
// saved the derivation. Hit rate per kind is
// (requests - derived) / requests, with store_hits splitting out how
// much of that the persistent tier contributed.
type artMetrics struct {
	req      *obs.Counter
	derived  *obs.Counter
	storeHit *obs.Counter
}

func newArtMetrics(kind string) artMetrics {
	r := obs.Default()
	return artMetrics{
		req:      r.CounterVec("ccs_engine_artifact_requests_total", "Artifact accessor calls, by kind.", "kind").With(kind),
		derived:  r.CounterVec("ccs_engine_artifacts_derived_total", "Artifacts computed fresh (every cache tier missed), by kind.", "kind").With(kind),
		storeHit: r.CounterVec("ccs_engine_artifact_store_hits_total", "Artifact derivations avoided by a persistent-store hit, by kind.", "kind").With(kind),
	}
}

var (
	amClosure = newArtMetrics("closure")
	amIndex   = newArtMetrics("index")
	amSat     = newArtMetrics("saturated")
	amStrong  = newArtMetrics("strong")
	amWeak    = newArtMetrics("weak")
	amCong    = newArtMetrics("cong")
)
