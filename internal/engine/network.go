package engine

import (
	"context"
	"fmt"

	"ccs/internal/compose"
	"ccs/internal/fsp"
)

// This file is the engine's network-aware query layer: equivalence
// questions about a compose.Network are answered by the
// minimize-then-compose pipeline instead of composing the flat product.
//
// Soundness. Parallel composition, restriction and relabeling — the only
// operators a Network applies — preserve strong equivalence ~ and
// observation congruence ≈ᶜ (both are full CCS congruences), and ≈ᶜ is
// contained in ≈ and hence in every coarser relation of Table II. So each
// component may be replaced by its quotient before the product is taken:
//
//	C[min(P)] rel C[P]   for every network context C and supported rel,
//
// with min = min~ for the strong relations (~ refines ≈ᶜ but a ≈ᶜ-minimum
// is not ~-equivalent to its source, so strong queries need the finer
// quotient) and min = min≈ᶜ for everything else. The quotients come from
// the per-process artifact cache, so a component shared by many networks
// — or by both sides of a query — is minimized exactly once.

// componentQuotient returns the relation-appropriate cached quotient of p.
func (c *Checker) componentQuotient(p *fsp.FSP, rel Relation) (*fsp.FSP, error) {
	switch rel {
	case Strong, Simulation:
		return c.StrongQuotient(p)
	case Weak, Trace, Failure, Congruence, K, Limited:
		return c.CongruenceQuotient(p)
	default:
		return nil, fmt.Errorf("engine: unknown relation %d", rel)
	}
}

// MinimizeNetwork returns a copy of net in which every component process
// is replaced by its cached quotient, sound for deciding rel on the
// composed system (see the file comment). Relabelings and the hidden set
// are preserved; the input network is not modified.
func (c *Checker) MinimizeNetwork(net *compose.Network, rel Relation) (*compose.Network, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	out := &compose.Network{
		Name:       net.Name,
		Components: make([]compose.Component, len(net.Components)),
		Hidden:     append([]string(nil), net.Hidden...),
	}
	for i, comp := range net.Components {
		min, err := c.componentQuotient(comp.P, rel)
		if err != nil {
			return nil, fmt.Errorf("engine: minimizing component %d: %w", i, err)
		}
		out.Components[i] = compose.Component{P: min, Relabel: comp.Relabel}
	}
	return out, nil
}

// ComposeNetwork materializes net by minimize-then-compose: each component
// is quotiented through the artifact cache and the product of the minima
// is returned. For rel-agnostic callers, Congruence is the safe default
// for every weak-family relation.
func (c *Checker) ComposeNetwork(net *compose.Network, rel Relation) (*fsp.FSP, error) {
	min, err := c.MinimizeNetwork(net, rel)
	if err != nil {
		return nil, err
	}
	return min.FSP()
}

// CheckNetwork decides whether the composed network is related to spec by
// rel, composing minimized components (k is the bound for the approximant
// relations, as in Query). The composed product enters the artifact cache
// like any process — its structural fingerprint makes repeated checks of
// the same network cheap even though each composition yields a fresh
// pointer. Like Check, CheckNetwork never panics on malformed inputs.
func (c *Checker) CheckNetwork(ctx context.Context, net *compose.Network, spec *fsp.FSP, rel Relation, k int) (eq bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			eq, err = false, fmt.Errorf("engine: %s network query panicked: %v", rel, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return false, err
	}
	composed, err := c.ComposeNetwork(net, rel)
	if err != nil {
		return false, err
	}
	return c.Check(ctx, Query{P: composed, Q: spec, Rel: rel, K: k})
}
