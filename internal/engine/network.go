package engine

import (
	"context"
	"fmt"

	"ccs/internal/compose"
	"ccs/internal/fsp"
	"ccs/internal/otf"
)

// This file is the engine's network-aware query layer: equivalence
// questions about a compose.Network are answered by the
// minimize-then-compose pipeline instead of composing the flat product.
//
// Soundness. Parallel composition, restriction and relabeling — the only
// operators a Network applies — preserve strong equivalence ~ and
// observation congruence ≈ᶜ (both are full CCS congruences), and ≈ᶜ is
// contained in ≈ and hence in every coarser relation of Table II. So each
// component may be replaced by its quotient before the product is taken:
//
//	C[min(P)] rel C[P]   for every network context C and supported rel,
//
// with min = min~ for the strong relations (~ refines ≈ᶜ but a ≈ᶜ-minimum
// is not ~-equivalent to its source, so strong queries need the finer
// quotient) and min = min≈ᶜ for everything else. The quotients come from
// the per-process artifact cache, so a component shared by many networks
// — or by both sides of a query — is minimized exactly once.

// componentQuotient returns the relation-appropriate cached quotient of p.
func (c *Checker) componentQuotient(p *fsp.FSP, rel Relation) (*fsp.FSP, error) {
	switch rel {
	case Strong, Simulation:
		return c.StrongQuotient(p)
	case Weak, Trace, Failure, Congruence, K, Limited:
		return c.CongruenceQuotient(p)
	default:
		return nil, fmt.Errorf("engine: unknown relation %d", rel)
	}
}

// MinimizeNetwork returns a copy of net in which every component process
// is replaced by its cached quotient, sound for deciding rel on the
// composed system (see the file comment). Relabelings and the hidden set
// are preserved; the input network is not modified.
func (c *Checker) MinimizeNetwork(net *compose.Network, rel Relation) (*compose.Network, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	out := &compose.Network{
		Name:       net.Name,
		Components: make([]compose.Component, len(net.Components)),
		Hidden:     append([]string(nil), net.Hidden...),
	}
	for i, comp := range net.Components {
		min, err := c.componentQuotient(comp.P, rel)
		if err != nil {
			return nil, fmt.Errorf("engine: minimizing component %d: %w", i, err)
		}
		out.Components[i] = compose.Component{P: min, Relabel: comp.Relabel}
	}
	return out, nil
}

// ComposeNetwork materializes net by minimize-then-compose: each component
// is quotiented through the artifact cache and the product of the minima
// is returned. For rel-agnostic callers, Congruence is the safe default
// for every weak-family relation.
func (c *Checker) ComposeNetwork(net *compose.Network, rel Relation) (*fsp.FSP, error) {
	min, err := c.MinimizeNetwork(net, rel)
	if err != nil {
		return nil, err
	}
	return min.FSP()
}

// CheckNetwork decides whether the composed network is related to spec by
// rel, composing minimized components (k is the bound for the approximant
// relations, as in Query). The composed product enters the artifact cache
// like any process — its structural fingerprint makes repeated checks of
// the same network cheap even though each composition yields a fresh
// pointer. Like Check, CheckNetwork never panics on malformed inputs.
func (c *Checker) CheckNetwork(ctx context.Context, net *compose.Network, spec *fsp.FSP, rel Relation, k int) (eq bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			eq, err = false, fmt.Errorf("engine: %s network query panicked: %v", rel, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return false, err
	}
	composed, err := c.ComposeNetwork(net, rel)
	if err != nil {
		return false, err
	}
	return c.Check(ctx, Query{P: composed, Q: spec, Rel: rel, K: k})
}

// OTFInfo reports how CheckNetworkOTF answered a query.
type OTFInfo struct {
	// OnTheFly is true when the lazy game decided the query; false when
	// the engine fell back to minimize-then-compose.
	OnTheFly bool
	// Fallback is why the fall back was taken ("" when OnTheFly).
	Fallback string
	// Pairs and Depth are the game's exploration stats (OnTheFly only):
	// distinct (product, spec) pairs interned and BFS levels walked.
	Pairs int
	Depth int
	// Counterexample is the game's distinguishing trace on an
	// inequivalent verdict (OnTheFly only).
	Counterexample []string
}

// otfRelation maps an engine relation onto the on-the-fly game's, when
// the game covers it.
func otfRelation(rel Relation) (otf.Rel, bool) {
	switch rel {
	case Strong:
		return otf.Strong, true
	case Weak:
		return otf.Weak, true
	case Congruence:
		return otf.Congruence, true
	default:
		return 0, false
	}
}

// CheckNetworkOTF decides whether the composed network is related to spec
// by rel without materializing the product: components and spec are
// quotiented through the artifact cache exactly as in CheckNetwork, but
// the product of the minima is then explored lazily against the spec by
// the on-the-fly bisimulation game (internal/otf), which returns on the
// first mismatch. Relations the game does not cover — everything but
// Strong, Weak and Congruence — and specs that are not deterministic
// (tau-free for the weak relations) fall back to the
// minimize-then-compose pipeline, so CheckNetworkOTF always agrees with
// CheckNetwork. Like CheckNetwork, it never panics on malformed inputs.
func (c *Checker) CheckNetworkOTF(ctx context.Context, net *compose.Network, spec *fsp.FSP, rel Relation, k int) (bool, error) {
	eq, _, err := c.CheckNetworkOTFInfo(ctx, net, spec, rel, k)
	return eq, err
}

// CheckNetworkOTFInfo is CheckNetworkOTF with the route taken and the
// game's exploration stats, for callers that report or assert on them
// (the CLI, ccsbench E18, the early-exit tests).
func (c *Checker) CheckNetworkOTFInfo(ctx context.Context, net *compose.Network, spec *fsp.FSP, rel Relation, k int) (eq bool, info OTFInfo, err error) {
	defer func() {
		if r := recover(); r != nil {
			eq, err = false, fmt.Errorf("engine: %s network query panicked: %v", rel, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return false, info, err
	}
	orel, covered := otfRelation(rel)
	switch {
	case spec == nil:
		info.Fallback = "nil spec"
	case !covered:
		info.Fallback = fmt.Sprintf("relation %s not covered by the on-the-fly game", rel)
	default:
		minSpec, err := c.componentQuotient(spec, rel)
		if err != nil {
			return false, info, err
		}
		if elig := otf.Eligible(minSpec, orel); elig != nil {
			info.Fallback = elig.Error()
		} else {
			minNet, err := c.MinimizeNetwork(net, rel)
			if err != nil {
				return false, info, err
			}
			res, err := otf.Check(ctx, minNet, minSpec, orel, otf.Options{})
			if err != nil {
				return false, info, err
			}
			info.OnTheFly = true
			info.Pairs = res.Pairs
			info.Depth = res.Depth
			if res.Counterexample != nil {
				info.Counterexample = res.Counterexample.Trace
			}
			return res.Equivalent, info, nil
		}
	}
	eq, err = c.CheckNetwork(ctx, net, spec, rel, k)
	return eq, info, err
}
