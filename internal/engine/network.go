package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"ccs/internal/compose"
	"ccs/internal/fsp"
	"ccs/internal/obs"
	"ccs/internal/otf"
	"ccs/internal/vet"
)

// This file is the engine's network-aware query layer: equivalence
// questions about a compose.Network are answered by the
// minimize-then-compose pipeline instead of composing the flat product.
//
// Soundness. Parallel composition, restriction and relabeling — the only
// operators a Network applies — preserve strong equivalence ~ and
// observation congruence ≈ᶜ (both are full CCS congruences), and ≈ᶜ is
// contained in ≈ and hence in every coarser relation of Table II. So each
// component may be replaced by its quotient before the product is taken:
//
//	C[min(P)] rel C[P]   for every network context C and supported rel,
//
// with min = min~ for the strong relations (~ refines ≈ᶜ but a ≈ᶜ-minimum
// is not ~-equivalent to its source, so strong queries need the finer
// quotient) and min = min≈ᶜ for everything else. The quotients come from
// the per-process artifact cache, so a component shared by many networks
// — or by both sides of a query — is minimized exactly once.
//
// Sync vectors preserve the congruence argument: a compose.SyncRule only
// ever matches observable component actions (Validate rejects tau parts),
// and component taus interleave freely around a rendezvous exactly as they
// do around a pairwise handshake. So the standard proof that composition
// preserves ~ and ≈ᶜ — which needs only that tau never participates in a
// synchronization — carries over verbatim to the vector operator, and each
// component may still be quotiented before the product is taken.

// componentQuotient returns the relation-appropriate cached quotient of p.
func (c *Checker) componentQuotient(p *fsp.FSP, rel Relation) (*fsp.FSP, error) {
	switch rel {
	case Strong, Simulation:
		return c.StrongQuotient(p)
	case Weak, Trace, Failure, Congruence, K, Limited:
		return c.CongruenceQuotient(p)
	default:
		return nil, fmt.Errorf("engine: unknown relation %d", rel)
	}
}

// MinimizeNetwork returns a copy of net in which every component process
// is replaced by its cached quotient, sound for deciding rel on the
// composed system (see the file comment). Relabelings, the hidden set and
// the sync table are preserved; the input network is not modified. ctx is
// polled before
// each component quotient — one quotient can be a full Paige-Tarjan run,
// so a cancelled query stops between components rather than minimizing
// the whole network first.
func (c *Checker) MinimizeNetwork(ctx context.Context, net *compose.Network, rel Relation) (*compose.Network, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	out := &compose.Network{
		Name:       net.Name,
		Components: make([]compose.Component, len(net.Components)),
		Hidden:     append([]string(nil), net.Hidden...),
		Sync:       append([]compose.SyncRule(nil), net.Sync...),
	}
	for i, comp := range net.Components {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		min, err := c.componentQuotient(comp.P, rel)
		if err != nil {
			return nil, fmt.Errorf("engine: minimizing component %d: %w", i, err)
		}
		out.Components[i] = compose.Component{P: min, Relabel: comp.Relabel}
	}
	return out, nil
}

// ComposeNetwork materializes net by minimize-then-compose: each component
// is quotiented through the artifact cache and the product of the minima
// is returned. For rel-agnostic callers, Congruence is the safe default
// for every weak-family relation. Both the quotients and the product walk
// itself poll ctx.
func (c *Checker) ComposeNetwork(ctx context.Context, net *compose.Network, rel Relation) (*fsp.FSP, error) {
	min, err := c.MinimizeNetwork(ctx, net, rel)
	if err != nil {
		return nil, err
	}
	return min.FSPCtx(ctx)
}

// CheckNetwork decides whether the composed network is related to spec by
// rel, composing minimized components (k is the bound for the approximant
// relations, as in Query). The composed product enters the artifact cache
// like any process — its structural fingerprint makes repeated checks of
// the same network cheap even though each composition yields a fresh
// pointer. Like Check, CheckNetwork never panics on malformed inputs.
func (c *Checker) CheckNetwork(ctx context.Context, net *compose.Network, spec *fsp.FSP, rel Relation, k int) (eq bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			eq, err = false, fmt.Errorf("engine: %s network query panicked: %v", rel, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return false, err
	}
	sp := obs.TraceFrom(ctx).Start("compose")
	composed, err := c.ComposeNetwork(ctx, net, rel)
	if err != nil {
		sp.End(obs.A("route", "mtc"))
		return false, err
	}
	sp.End(obs.A("route", "mtc"), obs.AInt("product-states", int64(composed.NumStates())))
	return c.Check(ctx, Query{P: composed, Q: spec, Rel: rel, K: k})
}

// Routes a CheckNetworkOTF query can take, recorded in OTFInfo.Route: the
// direct game against a deterministic spec, the determinized subset game
// against a nondeterministic one, or the minimize-then-compose fallback
// for queries the game genuinely cannot play.
const (
	RouteOTF             = "otf"
	RouteOTFDeterminized = "otf-determinized"
	RouteMTCFallback     = "mtc-fallback"
)

// OTFInfo reports how CheckNetworkOTF answered a query.
type OTFInfo struct {
	// OnTheFly is true when the lazy game decided the query; false when
	// the engine fell back to minimize-then-compose.
	OnTheFly bool
	// Route is the route actually taken: RouteOTF, RouteOTFDeterminized
	// or RouteMTCFallback. A silent route change is a correctness trap
	// for anyone benchmarking, so it is always recorded.
	Route string
	// Fallback is why the fallback was taken ("" when OnTheFly): the
	// relation is outside the game, the spec is epsilon-tainted or
	// empty, or the determinized game hit essential nondeterminism
	// (a reachable spec subset mixing inequivalent states).
	Fallback string
	// Exploration stats of the game (OnTheFly only). Pairs is the number
	// of distinct (product, spec-side) pairs interned; Explored counts
	// the pairs whose local checks actually ran (≤ Pairs on early exit);
	// MaxWalk is the deepest lazy tau-closure walk any weak-enabledness
	// obligation needed; Workers, Steals and Utilization describe the
	// work-stealing scheduler's pool size, successful batch steals and
	// mean-over-max per-worker load balance.
	Pairs       int
	Explored    int
	MaxWalk     int
	Workers     int
	Steals      int
	Utilization float64
	// SpecSubsets is the number of spec subsets the determinized game
	// interned (0 on the direct route).
	SpecSubsets int
	// Counterexample is the game's distinguishing trace on an
	// inequivalent verdict (OnTheFly only), with the mismatch described
	// by CounterexampleReason.
	Counterexample       []string
	CounterexampleReason string
	// Diagnostics carries the static-analysis findings (internal/vet) of
	// the original network and spec when the engine had to fall back off
	// the game — the inputs whose nondeterminism or tau structure defeats
	// the game are exactly the ones worth vetting, so the fallback reason
	// travels with the findings that explain the input. Empty on the
	// on-the-fly routes.
	Diagnostics []vet.Diagnostic
}

// CounterexampleString renders the distinguishing scenario like
// otf.Counterexample.String: "after a·tau·b: <reason>". Empty when the
// query carried no counterexample.
func (i OTFInfo) CounterexampleString() string {
	if i.CounterexampleReason == "" {
		return ""
	}
	t := strings.Join(i.Counterexample, "·")
	if t == "" {
		t = "ε"
	}
	return fmt.Sprintf("after %s: %s", t, i.CounterexampleReason)
}

// otfRelation maps an engine relation onto the on-the-fly game's, when
// the game covers it.
func otfRelation(rel Relation) (otf.Rel, bool) {
	switch rel {
	case Strong:
		return otf.Strong, true
	case Weak:
		return otf.Weak, true
	case Congruence:
		return otf.Congruence, true
	default:
		return 0, false
	}
}

// CheckNetworkOTF decides whether the composed network is related to spec
// by rel without materializing the product: components and spec are
// quotiented through the artifact cache exactly as in CheckNetwork, but
// the product of the minima is then explored lazily against the spec by
// the on-the-fly bisimulation game (internal/otf), which returns on the
// first mismatch. Nondeterministic and tau-bearing specs play through
// the game's lazy subset determinization; the engine falls back to the
// minimize-then-compose pipeline only for queries the game genuinely
// cannot play — relations outside Strong/Weak/Congruence, epsilon-tainted
// or empty specs, and specs whose nondeterminism turns out to be
// essential (a reachable subset mixes inequivalent states) — so
// CheckNetworkOTF always agrees with CheckNetwork. The route taken and
// any fallback reason are recorded in the OTFInfo of
// CheckNetworkOTFInfo. Like CheckNetwork, it never panics on malformed
// inputs.
func (c *Checker) CheckNetworkOTF(ctx context.Context, net *compose.Network, spec *fsp.FSP, rel Relation, k int) (bool, error) {
	eq, _, err := c.CheckNetworkOTFInfo(ctx, net, spec, rel, k)
	return eq, err
}

// CheckNetworkOTFInfo is CheckNetworkOTF with the route taken and the
// game's exploration stats, for callers that report or assert on them
// (the CLI, ccsbench E18/E19, the early-exit tests).
func (c *Checker) CheckNetworkOTFInfo(ctx context.Context, net *compose.Network, spec *fsp.FSP, rel Relation, k int) (eq bool, info OTFInfo, err error) {
	defer func() {
		if r := recover(); r != nil {
			eq, err = false, fmt.Errorf("engine: %s network query panicked: %v", rel, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return false, info, err
	}
	orel, covered := otfRelation(rel)
	switch {
	case spec == nil:
		info.Fallback = "nil spec"
	case !covered:
		info.Fallback = fmt.Sprintf("relation %s not covered by the on-the-fly game", rel)
	default:
		tr := obs.TraceFrom(ctx)
		sp := tr.Start("quotient")
		minSpec, err := c.componentQuotient(spec, rel)
		if err != nil {
			sp.End()
			return false, info, err
		}
		minNet, err := c.MinimizeNetwork(ctx, net, rel)
		sp.End(obs.AInt("components", int64(len(net.Components))))
		if err != nil {
			return false, info, err
		}
		sp = tr.Start("otf-explore")
		res, err := otf.Check(ctx, minNet, minSpec, orel, otf.Options{})
		if res != nil {
			sp.End(
				obs.AInt("pairs", int64(res.Pairs)),
				obs.AInt("explored", int64(res.Explored)),
				obs.AInt("steals", int64(res.Steals)),
				obs.A("determinized", fmt.Sprintf("%t", res.Determinized)),
			)
		} else {
			sp.End(obs.A("outcome", "fallback"))
		}
		var undecided *otf.UndecidedError
		var ineligible *otf.IneligibleError
		switch {
		case err == nil:
			info.OnTheFly = true
			info.Route = RouteOTF
			if res.Determinized {
				info.Route = RouteOTFDeterminized
			}
			info.Pairs = res.Pairs
			info.Explored = res.Explored
			info.MaxWalk = res.MaxWalk
			info.Workers = res.Workers
			info.Steals = res.Steals
			info.Utilization = res.Utilization
			info.SpecSubsets = res.SpecSubsets
			if res.Counterexample != nil {
				info.Counterexample = res.Counterexample.Trace
				info.CounterexampleReason = res.Counterexample.Reason
			}
			return res.Equivalent, info, nil
		case errors.As(err, &undecided):
			// The determinized game met essential nondeterminism: an
			// honest fallback, with the heterogeneous subset on record.
			info.Fallback = undecided.Reason
			info.Diagnostics = fallbackDiagnostics(net, spec)
		case errors.As(err, &ineligible):
			// Epsilon-tainted or empty specs never enter the game.
			info.Fallback = ineligible.Error()
			info.Diagnostics = fallbackDiagnostics(net, spec)
		default:
			return false, info, err
		}
	}
	info.Route = RouteMTCFallback
	eq, err = c.CheckNetwork(ctx, net, spec, rel, k)
	return eq, info, err
}

// fallbackDiagnostics vets the ORIGINAL network and spec for an OTFInfo
// fallback report. The originals matter: minimal ≈ᶜ quotients carry a root
// tau self-loop by construction, which would read as unguarded recursion
// the user never wrote. Vet is advisory here — a malformed network already
// failed MinimizeNetwork, so errors are dropped rather than masking the
// fallback verdict.
func fallbackDiagnostics(net *compose.Network, spec *fsp.FSP) []vet.Diagnostic {
	diags, err := vet.Network(net, spec)
	if err != nil {
		return nil
	}
	return diags
}
