package store

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"ccs/internal/fsp"
	"ccs/internal/lts"
)

// fuzzSeedFSP builds the codec fixture without *testing.T (fuzz seeding
// runs before any test context exists).
func fuzzSeedFSP() *fsp.FSP {
	f, err := fsp.ParseString(fixture)
	if err != nil {
		panic(err)
	}
	return f
}

// entryBytes assembles a store entry file around payload, the same layout
// put writes — so the fuzzer's seeds start from genuine entries and
// mutate from there.
func entryBytes(kind Kind, verify uint64, payload []byte) []byte {
	data := make([]byte, headerLen, headerLen+len(payload))
	copy(data, magic)
	binary.LittleEndian.PutUint16(data[4:6], formatVersion)
	data[6] = kindByte[kind]
	binary.LittleEndian.PutUint64(data[8:16], verify)
	binary.LittleEndian.PutUint32(data[16:20], crc32.ChecksumIEEE(payload))
	return append(data, payload...)
}

// FuzzEntryDecode drives arbitrary bytes through the full read path of a
// store entry — header validation, then the payload decoder for each
// artifact family. The contract under fuzzing is the store's own: hostile
// bytes are at worst a typed error (a cold miss), never a panic, and
// anything decodeFSP accepts must be a process the rest of the engine can
// re-encode.
func FuzzEntryDecode(f *testing.F) {
	seed := fuzzSeedFSP()
	fspPayload := encodeFSP(seed)
	cloPayload := encodeClosure(fsp.TauClosure(seed))
	idxPayload := encodeIndex(lts.FromFSP(seed))
	f.Add(entryBytes(KindStrongMin, 42, fspPayload))
	f.Add(entryBytes(KindClosure, 42, cloPayload))
	f.Add(entryBytes(KindIndex, 42, idxPayload))
	f.Add(entryBytes(KindWeakMin, 0, nil))
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Add(fspPayload) // headerless payload: must fail the magic check

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, kind := range []Kind{KindStrongMin, KindClosure, KindIndex} {
			payload, err := parseEntry(data, kind, 42)
			if err != nil {
				continue
			}
			switch kind {
			case KindClosure:
				decodeClosure(payload)
			case KindIndex:
				decodeIndex(payload)
			default:
				g, err := decodeFSP(payload)
				if err != nil {
					continue
				}
				// An accepted process must survive re-encoding: the codec
				// may not admit values its own encoder cannot represent.
				if _, err := decodeFSP(encodeFSP(g)); err != nil {
					t.Fatalf("accepted process does not round-trip: %v", err)
				}
			}
		}
	})
}
