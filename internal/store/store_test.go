package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ccs/internal/fsp"
	"ccs/internal/lts"
)

// fixture is a small process exercising every feature the codec carries:
// a named process with tau arcs, several observable actions, an extension
// variable, and a non-zero start state.
const fixture = `
fsp Fixture
alphabet a b c
vars x
states 4
start 1
ext 3 x
arc 0 a 1
arc 1 tau 2
arc 1 b 0
arc 2 c 3
arc 3 a 3
`

func mustParse(t *testing.T, text string) *fsp.FSP {
	t.Helper()
	f, err := fsp.ParseString(text)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return f
}

func openStore(t *testing.T, dir string, cap int64) *Store {
	t.Helper()
	s, err := Open(dir, cap)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	return s
}

func sameClosure(a, b fsp.Closure) bool {
	if a.NumStates() != b.NumStates() {
		return false
	}
	for s := 0; s < a.NumStates(); s++ {
		x, y := a.Of(fsp.State(s)), b.Of(fsp.State(s))
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
	}
	return true
}

func sameIndex(a, b *lts.Index) bool {
	if a.N() != b.N() || a.NumLabels() != b.NumLabels() || a.NumEdges() != b.NumEdges() {
		return false
	}
	al, bl := a.LabelNames(), b.LabelNames()
	if len(al) != len(bl) {
		return false
	}
	for i := range al {
		if al[i] != bl[i] {
			return false
		}
	}
	as, aa, at := a.Fwd()
	bs, ba, bt := b.Fwd()
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	for i := range aa {
		if aa[i] != ba[i] || at[i] != bt[i] {
			return false
		}
	}
	return true
}

// TestRoundTrip stores one artifact of every kind, reopens the directory
// in a fresh Store (so nothing is served from in-process state), and
// checks each artifact comes back equal.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := mustParse(t, fixture)
	fp, v2 := fsp.Fingerprint(f), fsp.Fingerprint2(f)
	clo := fsp.TauClosure(f)
	idx := lts.FromFSP(f)

	s := openStore(t, dir, 0)
	s.PutFSP(fp, v2, KindStrongMin, f)
	s.PutFSP(fp, v2, KindSaturated, f)
	s.PutClosure(fp, v2, clo)
	s.PutIndex(fp, v2, idx)
	if st := s.Stats(); st.Writes != 4 || st.Entries != 4 {
		t.Fatalf("after 4 puts: %+v", st)
	}

	s = openStore(t, dir, 0)
	got, ok := s.GetFSP(fp, v2, KindStrongMin)
	if !ok || !fsp.StructuralEqual(f, got) {
		t.Fatalf("FSP round trip: ok=%v equal=%v", ok, ok && fsp.StructuralEqual(f, got))
	}
	if got.Name() != f.Name() {
		t.Fatalf("FSP name round trip: got %q want %q", got.Name(), f.Name())
	}
	if _, ok := s.GetFSP(fp, v2, KindSaturated); !ok {
		t.Fatalf("saturated kind lost")
	}
	gc, ok := s.GetClosure(fp, v2)
	if !ok || !sameClosure(clo, gc) {
		t.Fatalf("closure round trip failed (ok=%v)", ok)
	}
	gi, ok := s.GetIndex(fp, v2)
	if !ok || !sameIndex(idx, gi) {
		t.Fatalf("index round trip failed (ok=%v)", ok)
	}
	if st := s.Stats(); st.Hits != 4 || st.Misses != 0 {
		t.Fatalf("after 4 warm gets: %+v", st)
	}
}

func TestMissCounts(t *testing.T) {
	s := openStore(t, t.TempDir(), 0)
	if _, ok := s.GetFSP(1, 2, KindWeakMin); ok {
		t.Fatalf("hit on empty store")
	}
	if _, ok := s.GetClosure(1, 2); ok {
		t.Fatalf("hit on empty store")
	}
	if st := s.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats after cold gets: %+v", st)
	}
}

// TestCorruptEntryIsColdMiss flips one payload byte of each stored entry
// and verifies the store treats every one as a miss, deletes the file, and
// never panics or serves a wrong artifact.
func TestCorruptEntryIsColdMiss(t *testing.T) {
	dir := t.TempDir()
	f := mustParse(t, fixture)
	fp, v2 := fsp.Fingerprint(f), fsp.Fingerprint2(f)

	s := openStore(t, dir, 0)
	s.PutFSP(fp, v2, KindStrongMin, f)
	name := entryName(fp, KindStrongMin)
	path := filepath.Join(dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt every byte position in turn, checksum included.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s := openStore(t, dir, 0)
		if got, ok := s.GetFSP(fp, v2, KindStrongMin); ok {
			// A flip may leave the entry readable only if it decodes to
			// the same process (it cannot: the checksum covers the
			// payload and the header fields are all load-bearing).
			t.Fatalf("byte %d: corrupt entry served (equal=%v)", i, fsp.StructuralEqual(f, got))
		}
		if st := s.Stats(); st.Misses != 1 {
			t.Fatalf("byte %d: stats %+v", i, st)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("byte %d: corrupt entry not deleted", i)
		}
	}
}

// TestTruncatedEntryIsColdMiss simulates a torn write that somehow reached
// the real name (e.g. filesystem damage): every prefix of a valid entry
// must read as a miss.
func TestTruncatedEntryIsColdMiss(t *testing.T) {
	dir := t.TempDir()
	f := mustParse(t, fixture)
	fp, v2 := fsp.Fingerprint(f), fsp.Fingerprint2(f)

	s := openStore(t, dir, 0)
	s.PutFSP(fp, v2, KindWeakMin, f)
	path := filepath.Join(dir, entryName(fp, KindWeakMin))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		s := openStore(t, dir, 0)
		if _, ok := s.GetFSP(fp, v2, KindWeakMin); ok {
			t.Fatalf("truncation to %d bytes served an artifact", n)
		}
	}
}

// TestCollisionGuard stores an artifact under process P's fingerprint and
// asks for it with a different verify fingerprint, as would happen if a
// distinct process Q collided with P on the 64-bit key. The second hash
// must reject the entry.
func TestCollisionGuard(t *testing.T) {
	dir := t.TempDir()
	f := mustParse(t, fixture)
	fp, v2 := fsp.Fingerprint(f), fsp.Fingerprint2(f)

	s := openStore(t, dir, 0)
	s.PutFSP(fp, v2, KindStrongMin, f)
	if _, ok := s.GetFSP(fp, v2+1, KindStrongMin); ok {
		t.Fatalf("collision guard did not reject mismatched verify fingerprint")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("collision stats: %+v", st)
	}
}

// TestKindConfusion renames an entry to another kind's name; the kind byte
// in the header must reject it.
func TestKindConfusion(t *testing.T) {
	dir := t.TempDir()
	f := mustParse(t, fixture)
	fp, v2 := fsp.Fingerprint(f), fsp.Fingerprint2(f)

	s := openStore(t, dir, 0)
	s.PutFSP(fp, v2, KindStrongMin, f)
	if err := os.Rename(
		filepath.Join(dir, entryName(fp, KindStrongMin)),
		filepath.Join(dir, entryName(fp, KindWeakMin)),
	); err != nil {
		t.Fatal(err)
	}
	s = openStore(t, dir, 0)
	if _, ok := s.GetFSP(fp, v2, KindWeakMin); ok {
		t.Fatalf("entry renamed across kinds was served")
	}
}

// TestStaleCongMinIsColdMiss pins the codec-version bump of the minimal
// ≈ᶜ quotient: a store directory written before the quotient went minimal
// holds KindCongMin entries whose header carries the old kind byte 5 —
// fresh-root-shaped quotients the current engine must never decode. The
// entry is forged by patching the kind byte of a freshly written entry
// (the payload CRC stays valid, exactly like a genuine stale file); the
// read must be a corrupt-counted cold miss and the file must be deleted.
func TestStaleCongMinIsColdMiss(t *testing.T) {
	dir := t.TempDir()
	f := mustParse(t, fixture)
	fp, v2 := fsp.Fingerprint(f), fsp.Fingerprint2(f)

	s := openStore(t, dir, 0)
	s.PutFSP(fp, v2, KindCongMin, f)
	path := filepath.Join(dir, entryName(fp, KindCongMin))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[6] != kindByte[KindCongMin] || kindByte[KindCongMin] != 7 {
		t.Fatalf("kind byte layout changed: header %d, table %d", data[6], kindByte[KindCongMin])
	}
	data[6] = 5 // the pre-minimal KindCongMin codec version
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s = openStore(t, dir, 0)
	if _, ok := s.GetFSP(fp, v2, KindCongMin); ok {
		t.Fatal("stale fresh-root ≈ᶜ quotient entry was served")
	}
	if st := s.Stats(); st.Misses != 1 || st.Corrupt != 1 {
		t.Fatalf("stale-entry stats: %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("stale entry not deleted after rejection")
	}
}

// TestEviction fills a tiny store past its cap and checks the
// least-recently-used entries fall out, on Put and on Open.
func TestEviction(t *testing.T) {
	dir := t.TempDir()
	f := mustParse(t, fixture)
	v2 := fsp.Fingerprint2(f)
	one := int64(len(encodeFSP(f)) + headerLen)

	s := openStore(t, dir, 3*one)
	for fp := uint64(1); fp <= 4; fp++ {
		s.PutFSP(fp, v2, KindStrongMin, f)
	}
	st := s.Stats()
	if st.Entries != 3 || st.Evictions != 1 || st.Bytes != 3*one {
		t.Fatalf("after overflow: %+v", st)
	}
	if _, ok := s.GetFSP(1, v2, KindStrongMin); ok {
		t.Fatalf("oldest entry survived eviction")
	}
	// Touch entry 2 so entry 3 is now least recently used, then overflow.
	if _, ok := s.GetFSP(2, v2, KindStrongMin); !ok {
		t.Fatalf("entry 2 missing")
	}
	s.PutFSP(5, v2, KindStrongMin, f)
	if _, ok := s.GetFSP(3, v2, KindStrongMin); ok {
		t.Fatalf("LRU order ignored: entry 3 should have been evicted")
	}
	if _, ok := s.GetFSP(2, v2, KindStrongMin); !ok {
		t.Fatalf("recently used entry 2 evicted")
	}

	// Reopening with a smaller cap trims the inherited directory.
	s = openStore(t, dir, one)
	if st := s.Stats(); st.Entries != 1 || st.Bytes > one {
		t.Fatalf("open under smaller cap: %+v", st)
	}
}

// TestOversizedEntrySkipped: an artifact larger than the whole cache is
// never written.
func TestOversizedEntrySkipped(t *testing.T) {
	dir := t.TempDir()
	f := mustParse(t, fixture)
	s := openStore(t, dir, 8)
	s.PutFSP(fsp.Fingerprint(f), fsp.Fingerprint2(f), KindStrongMin, f)
	if st := s.Stats(); st.Entries != 0 || st.Writes != 0 {
		t.Fatalf("oversized entry stored: %+v", st)
	}
}

// TestOpenCleansTempFiles: leftovers from a writer killed mid-Put are
// removed at Open and never adopted as entries.
func TestOpenCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, tmpPrefix+"123456")
	if err := os.WriteFile(tmp, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(dir, "README")
	if err := os.WriteFile(junk, []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dir, 0)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived Open")
	}
	if _, err := os.Stat(junk); err != nil {
		t.Fatalf("non-entry file was touched: %v", err)
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("junk adopted as entries: %+v", st)
	}
}

// TestConcurrentAccess hammers one store from many goroutines mixing puts,
// hits, misses and corruption-triggered discards; run with -race.
func TestConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	f := mustParse(t, fixture)
	v2 := fsp.Fingerprint2(f)
	one := int64(len(encodeFSP(f)) + headerLen)
	s := openStore(t, dir, 8*one)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fp := uint64(i % 16)
				s.PutFSP(fp, v2, KindStrongMin, f)
				if got, ok := s.GetFSP(fp, v2, KindStrongMin); ok && !fsp.StructuralEqual(f, got) {
					t.Errorf("wrong artifact served")
					return
				}
				s.GetFSP(fp, v2+uint64(g%2), KindStrongMin) // half are guard misses
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Entries > 8 || st.Bytes > 8*one {
		t.Fatalf("cap exceeded: %+v", st)
	}
}

// TestEntryNameShape pins the on-disk naming scheme.
func TestEntryNameShape(t *testing.T) {
	if got := entryName(0xdeadbeef, KindWeakMin); got != "00000000deadbeef.weak" {
		t.Fatalf("entryName = %q", got)
	}
	for _, tc := range []struct {
		name string
		ok   bool
	}{
		{"00000000deadbeef.weak", true},
		{"00000000deadbeef.zzz", true}, // unknown kind: adopted, never served
		{"00000000DEADBEEF.weak", false},
		{"short.weak", false},
		{"00000000deadbeefXweak", false},
		{fmt.Sprintf("%016x.", 1), false},
	} {
		if got := validEntryName(tc.name); got != tc.ok {
			t.Errorf("validEntryName(%q) = %v, want %v", tc.name, got, tc.ok)
		}
	}
}
