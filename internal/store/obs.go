package store

import "ccs/internal/obs"

// Process-global mirrors of the per-store counters, published on the
// default registry so /metrics and the CI smoke can watch the persistent
// tier without holding a *Store. Every store in the process adds into
// the same series; per-store breakdown stays on Stats().
var (
	mHits        = obs.Default().Counter("ccs_store_hits_total", "Validated reads served by the persistent artifact store.")
	mMisses      = obs.Default().Counter("ccs_store_misses_total", "Persistent store lookups that found no usable entry.")
	mCorrupt     = obs.Default().Counter("ccs_store_corrupt_total", "Store entries discarded for failing checksum or decode.")
	mWrites      = obs.Default().Counter("ccs_store_writes_total", "Artifacts persisted to the store.")
	mWriteErrors = obs.Default().Counter("ccs_store_write_errors_total", "Failed attempts to persist an artifact.")
	mEvictions   = obs.Default().Counter("ccs_store_evictions_total", "Entries evicted to keep the store under its byte cap.")
)
