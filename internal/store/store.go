// Package store is the persistent, content-addressed artifact store behind
// the engine's in-memory cache: derived artifacts — canonical quotients,
// saturated forms, tau-closures and CSR refinement indexes — are spilled to
// disk keyed by the structural fingerprint of the process they derive from
// (fsp.Fingerprint), so they survive the process that computed them. A
// long-lived server (internal/server) or a repeated CLI invocation against
// the same cache directory then answers most queries from warm artifacts
// instead of re-running partition refinement.
//
// The store is a cache, not a database: every failure mode degrades to a
// cold miss. Entries are written to a temporary file and atomically
// renamed into place, so a crash mid-write leaves at worst an ignored temp
// file, never a torn entry; reads validate a magic header, a format
// version, a payload checksum and a second independent fingerprint of the
// source process (the collision guard), and anything that fails — a
// truncated file, a bit flip, a future format, a 64-bit fingerprint
// collision — is silently discarded and recounted as a miss. Capacity is
// bounded by a size-capped LRU: inserting past the cap evicts the
// least-recently-used entries. All methods are safe for concurrent use.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ccs/internal/fsp"
	"ccs/internal/lts"
)

// Kind names an artifact family. The kind is part of the entry's key: one
// process has one entry per kind.
type Kind string

// The artifact kinds the engine spills.
const (
	// KindClosure is the word-packed tau-closure (fsp.TauClosure).
	KindClosure Kind = "closure"
	// KindIndex is the CSR refinement index (internal/lts).
	KindIndex Kind = "index"
	// KindStrongMin is the canonical quotient modulo ~.
	KindStrongMin Kind = "strong"
	// KindWeakMin is the canonical quotient modulo ≈.
	KindWeakMin Kind = "weak"
	// KindCongMin is the ≈ᶜ-preserving quotient.
	KindCongMin Kind = "cong"
	// KindSaturated is the observable form P-hat of Theorem 4.1(a).
	KindSaturated Kind = "sat"
)

// kindByte gives each kind a stable byte for the entry header, so a file
// renamed to another kind's name is rejected. The byte doubles as the
// kind's codec version: when an artifact family changes shape, its byte
// is bumped and every stale on-disk entry fails the header check — a
// silent cold miss, never a wrong-shaped artifact. KindCongMin was 5
// while the ≈ᶜ quotient could carry a fresh root; it became 7 when the
// quotient went minimal (root tau self-loop, one state per ≈-class).
var kindByte = map[Kind]byte{
	KindClosure: 1, KindIndex: 2, KindStrongMin: 3,
	KindWeakMin: 4, KindCongMin: 7, KindSaturated: 6,
}

const (
	magic         = "CCSA"
	formatVersion = 1
	headerLen     = 4 + 2 + 1 + 1 + 8 + 4 // magic, version, kind, reserved, verify, crc
	tmpPrefix     = ".tmp-"
)

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Entries and Bytes describe the current contents.
	Entries int
	Bytes   int64
	// Hits and Misses count Get outcomes; Corrupt is the subset of misses
	// caused by an unreadable or mismatched entry (which is then deleted).
	Hits, Misses, Corrupt int64
	// Writes counts successful Puts; WriteErrors counts abandoned ones.
	Writes, WriteErrors int64
	// Evictions counts entries removed by the LRU cap.
	Evictions int64
}

type entry struct {
	name string
	size int64
	// LRU links: the store keeps a doubly-linked list, most recent first.
	prev, next *entry
}

// Store is a size-capped persistent artifact cache rooted at a directory.
// Open one with Open; the zero value is not usable.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	total   int64

	hits, misses, corrupt int64
	writes, writeErrors   int64
	evictions             int64
}

// Open opens (creating if necessary) the store rooted at dir. maxBytes
// bounds the total size of stored entries; zero or negative means
// unbounded. Leftover temporary files from a crashed writer are removed;
// existing entries are adopted with an LRU order approximated by file
// modification time. Entries are validated lazily on Get, so a corrupted
// file in the directory never fails Open.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  map[string]*entry{},
	}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type aged struct {
		e     *entry
		mtime int64
	}
	var found []aged
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !validEntryName(name) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, aged{
			e:     &entry{name: name, size: info.Size()},
			mtime: info.ModTime().UnixNano(),
		})
	}
	// Newest first, so pushing back builds the list most-recent-at-head.
	sort.Slice(found, func(i, j int) bool { return found[i].mtime > found[j].mtime })
	for _, a := range found {
		s.entries[a.e.name] = a.e
		s.pushBack(a.e)
		s.total += a.e.size
	}
	// An inherited directory may already exceed the cap.
	s.evictLocked()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// entryName is the content address: fingerprint, then kind.
func entryName(fp uint64, kind Kind) string { return fmt.Sprintf("%016x.%s", fp, kind) }

// validEntryName accepts "<16 hex>.<kind>" names. Unknown kind suffixes
// are still adopted by Open (they count toward the cap and age out via the
// LRU) but are never served.
func validEntryName(name string) bool {
	if len(name) < 18 || name[16] != '.' {
		return false
	}
	for _, c := range name[:16] {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// GetFSP loads a stored process artifact (a quotient or saturated form).
func (s *Store) GetFSP(fp, verify uint64, kind Kind) (*fsp.FSP, bool) {
	payload, ok := s.get(fp, verify, kind)
	if !ok {
		return nil, false
	}
	f, err := decodeFSP(payload)
	if err != nil {
		s.discard(entryName(fp, kind), true)
		return nil, false
	}
	s.noteHit()
	return f, true
}

// PutFSP stores a process artifact.
func (s *Store) PutFSP(fp, verify uint64, kind Kind, f *fsp.FSP) {
	s.put(fp, verify, kind, encodeFSP(f))
}

// GetClosure loads a stored tau-closure.
func (s *Store) GetClosure(fp, verify uint64) (fsp.Closure, bool) {
	payload, ok := s.get(fp, verify, KindClosure)
	if !ok {
		return fsp.Closure{}, false
	}
	c, err := decodeClosure(payload)
	if err != nil {
		s.discard(entryName(fp, KindClosure), true)
		return fsp.Closure{}, false
	}
	s.noteHit()
	return c, true
}

// PutClosure stores a tau-closure.
func (s *Store) PutClosure(fp, verify uint64, c fsp.Closure) {
	s.put(fp, verify, KindClosure, encodeClosure(c))
}

// GetIndex loads a stored CSR refinement index.
func (s *Store) GetIndex(fp, verify uint64) (*lts.Index, bool) {
	payload, ok := s.get(fp, verify, KindIndex)
	if !ok {
		return nil, false
	}
	x, err := decodeIndex(payload)
	if err != nil {
		s.discard(entryName(fp, KindIndex), true)
		return nil, false
	}
	s.noteHit()
	return x, true
}

// PutIndex stores a CSR refinement index.
func (s *Store) PutIndex(fp, verify uint64, x *lts.Index) {
	s.put(fp, verify, KindIndex, encodeIndex(x))
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:     len(s.entries),
		Bytes:       s.total,
		Hits:        s.hits,
		Misses:      s.misses,
		Corrupt:     s.corrupt,
		Writes:      s.writes,
		WriteErrors: s.writeErrors,
		Evictions:   s.evictions,
	}
}

// get returns the validated payload of an entry, or a recorded miss. The
// file read happens outside the lock; a concurrent eviction then surfaces
// as a read error, which is handled like any other miss.
func (s *Store) get(fp, verify uint64, kind Kind) ([]byte, bool) {
	name := entryName(fp, kind)
	s.mu.Lock()
	e := s.entries[name]
	if e == nil {
		s.misses++
		mMisses.Inc()
		s.mu.Unlock()
		return nil, false
	}
	s.moveToFront(e)
	s.mu.Unlock()

	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		s.discard(name, false)
		return nil, false
	}
	payload, err := parseEntry(data, kind, verify)
	if err != nil {
		s.discard(name, true)
		return nil, false
	}
	return payload, true
}

// noteHit records a fully successful Get: header, checksum and payload
// decode all passed. Counted by the typed accessors rather than get, so a
// payload that parses as bytes but decodes to garbage is a miss, not a
// hit-then-miss.
func (s *Store) noteHit() {
	mHits.Inc()
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}

// discard removes an unreadable or mismatched entry and counts the miss.
func (s *Store) discard(name string, corrupt bool) {
	s.mu.Lock()
	if e := s.entries[name]; e != nil {
		s.unlink(e)
		delete(s.entries, name)
		s.total -= e.size
	}
	s.misses++
	mMisses.Inc()
	if corrupt {
		s.corrupt++
		mCorrupt.Inc()
	}
	s.mu.Unlock()
	os.Remove(filepath.Join(s.dir, name))
}

// parseEntry validates an entry file and returns its payload.
func parseEntry(data []byte, kind Kind, verify uint64) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("store: entry shorter than header")
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("store: bad magic")
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != formatVersion {
		return nil, fmt.Errorf("store: format version %d, want %d", v, formatVersion)
	}
	if data[6] != kindByte[kind] {
		return nil, fmt.Errorf("store: entry kind %d, want %d", data[6], kindByte[kind])
	}
	if data[7] != 0 {
		// Reserved byte: must be zero in version 1, so a future writer
		// that assigns it meaning is not misread by this reader.
		return nil, fmt.Errorf("store: reserved header byte %d", data[7])
	}
	if got := binary.LittleEndian.Uint64(data[8:16]); got != verify {
		// Either a 64-bit fingerprint collision between distinct processes
		// or corruption of the verify field itself; both are misses.
		return nil, fmt.Errorf("store: verify fingerprint mismatch")
	}
	payload := data[headerLen:]
	if got := binary.LittleEndian.Uint32(data[16:20]); got != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("store: payload checksum mismatch")
	}
	return payload, nil
}

// put writes an entry atomically: encode to a temp file in the same
// directory, then rename into place. Failures abandon the write (the store
// is best-effort); success inserts the entry at the front of the LRU and
// evicts past the cap.
func (s *Store) put(fp, verify uint64, kind Kind, payload []byte) {
	size := int64(headerLen + len(payload))
	if s.maxBytes > 0 && size > s.maxBytes {
		return // larger than the whole cache; never storable
	}
	data := make([]byte, headerLen, headerLen+len(payload))
	copy(data, magic)
	binary.LittleEndian.PutUint16(data[4:6], formatVersion)
	data[6] = kindByte[kind]
	data[7] = 0 // reserved
	binary.LittleEndian.PutUint64(data[8:16], verify)
	binary.LittleEndian.PutUint32(data[16:20], crc32.ChecksumIEEE(payload))
	data = append(data, payload...)

	name := entryName(fp, kind)
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		s.noteWriteError()
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.noteWriteError()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.noteWriteError()
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp.Name())
		s.writeErrors++
		mWriteErrors.Inc()
		return
	}
	if e := s.entries[name]; e != nil {
		s.total += size - e.size
		e.size = size
		s.moveToFront(e)
	} else {
		e := &entry{name: name, size: size}
		s.entries[name] = e
		s.pushFront(e)
		s.total += size
	}
	s.writes++
	mWrites.Inc()
	s.evictLocked()
}

func (s *Store) noteWriteError() {
	mWriteErrors.Inc()
	s.mu.Lock()
	s.writeErrors++
	s.mu.Unlock()
}

// evictLocked removes least-recently-used entries until the total fits the
// cap. Called with s.mu held.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.total > s.maxBytes && s.tail != nil {
		e := s.tail
		s.unlink(e)
		delete(s.entries, e.name)
		s.total -= e.size
		s.evictions++
		mEvictions.Inc()
		os.Remove(filepath.Join(s.dir, e.name))
	}
}

// Intrusive LRU list plumbing; all called with s.mu held.

func (s *Store) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) pushBack(e *entry) {
	e.prev, e.next = s.tail, nil
	if s.tail != nil {
		s.tail.next = e
	}
	s.tail = e
	if s.head == nil {
		s.head = e
	}
}

func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
