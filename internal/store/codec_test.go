package store

import (
	"testing"

	"ccs/internal/fsp"
	"ccs/internal/lts"
)

// The codec tests feed the decoders hostile bytes directly, below the
// store's header/checksum layer: in the store proper the CRC catches most
// damage, so these are the paths that defend against a payload that is
// internally inconsistent (which the CRC, computed over the same bytes,
// cannot see).

func TestDecodeFSPTruncatedPrefixes(t *testing.T) {
	f := mustParse(t, fixture)
	payload := encodeFSP(f)
	for n := 0; n < len(payload); n++ {
		if _, err := decodeFSP(payload[:n]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", n)
		}
	}
	if _, err := decodeFSP(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatalf("trailing byte accepted")
	}
}

func TestDecodeClosureTruncatedPrefixes(t *testing.T) {
	f := mustParse(t, fixture)
	payload := encodeClosure(fsp.TauClosure(f))
	for n := 0; n < len(payload); n++ {
		if _, err := decodeClosure(payload[:n]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", n)
		}
	}
}

func TestDecodeIndexTruncatedPrefixes(t *testing.T) {
	f := mustParse(t, fixture)
	payload := encodeIndex(lts.FromFSP(f))
	for n := 0; n < len(payload); n++ {
		if _, err := decodeIndex(payload[:n]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", n)
		}
	}
}

// TestDecodeFSPBitFlips flips each byte of a valid payload and checks the
// decoder either errors or produces a well-formed process — never panics.
// (Some flips yield a different but valid process; that is what the
// store-level CRC is for.)
func TestDecodeFSPBitFlips(t *testing.T) {
	f := mustParse(t, fixture)
	payload := encodeFSP(f)
	for i := range payload {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), payload...)
			mut[i] ^= bit
			g, err := decodeFSP(mut)
			if err == nil && (g.NumStates() == 0 || int(g.Start()) >= g.NumStates()) {
				t.Fatalf("byte %d flip %#x: malformed process accepted", i, bit)
			}
		}
	}
}

// TestDecodeHugeCountRejected: a corrupt count must be rejected by the
// bytes-remaining bound before any allocation is attempted.
func TestDecodeHugeCountRejected(t *testing.T) {
	e := &encoder{}
	e.str("X")
	e.vint(1)
	e.str("a")
	e.vint(0)
	e.uvarint(1 << 40) // states: absurd
	if _, err := decodeFSP(e.b); err == nil {
		t.Fatalf("absurd state count accepted")
	}
}

func TestDecodeClosureRejectsBadSets(t *testing.T) {
	// Non-reflexive set: state 0's set does not contain 0.
	e := &encoder{}
	e.vint(2) // n
	e.vint(1) // |set(0)|
	e.uvarint(1)
	e.vint(1) // |set(1)|
	e.uvarint(1)
	if _, err := decodeClosure(e.b); err == nil {
		t.Fatalf("non-reflexive closure accepted")
	}
	// Out-of-range member.
	e = &encoder{}
	e.vint(1)
	e.vint(2)
	e.uvarint(0)
	e.uvarint(5)
	if _, err := decodeClosure(e.b); err == nil {
		t.Fatalf("out-of-range closure member accepted")
	}
}

func TestDecodeIndexRejectsInconsistentEdges(t *testing.T) {
	x := lts.FromFSP(mustParse(t, fixture))
	good := encodeIndex(x)
	if _, err := decodeIndex(good); err != nil {
		t.Fatalf("valid index rejected: %v", err)
	}
	// Splice in an edge count that disagrees with the degree sum by
	// re-encoding with one degree bumped.
	e := &encoder{}
	e.vint(x.N())
	e.vint(x.NumLabels())
	e.vint(0) // no labels
	start, label, to := x.Fwd()
	for s := 0; s < x.N(); s++ {
		d := int(start[s+1] - start[s])
		if s == 0 {
			d++
		}
		e.vint(d)
	}
	e.vint(len(to))
	for i := range to {
		e.vint(int(label[i]))
		e.vint(int(to[i]))
	}
	if _, err := decodeIndex(e.b); err == nil {
		t.Fatalf("degree/edge-count mismatch accepted")
	}
}

// TestClosureSingletonSharing: a closure whose sets are all singletons
// (no tau arcs) round-trips through the set representation.
func TestClosureAllSingletons(t *testing.T) {
	f := mustParse(t, "alphabet a\nstates 2\narc 0 a 1\n")
	clo := fsp.TauClosure(f)
	got, err := decodeClosure(encodeClosure(clo))
	if err != nil {
		t.Fatalf("singleton closure: %v", err)
	}
	if !sameClosure(clo, got) {
		t.Fatalf("singleton closure round trip mismatch")
	}
}

// TestFSPNoVarsNoExt: processes without variables or extensions (the
// common case for generated systems) round-trip.
func TestFSPNoVarsNoExt(t *testing.T) {
	f := mustParse(t, "alphabet a b\nstates 3\narc 0 a 1\narc 1 b 2\narc 2 tau 0\n")
	got, err := decodeFSP(encodeFSP(f))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !fsp.StructuralEqual(f, got) {
		t.Fatalf("round trip mismatch")
	}
}
