package store

import (
	"encoding/binary"
	"fmt"

	"ccs/internal/fsp"
	"ccs/internal/lts"
)

// This file is the payload codec of the store: compact varint-based binary
// encodings for the three artifact families the engine spills — processes
// (quotients and saturated forms), tau-closures, and CSR refinement
// indexes. Every decoder is written against hostile input: a payload is a
// disk artifact that may have been truncated, bit-flipped or written by a
// future version, and the store's contract is that anything unreadable is
// a cold miss, never a panic or a wrong artifact. Structural validation is
// delegated to the constructors (fsp.Builder.Build, fsp.ClosureFromSets,
// lts.FromCSR), which re-check the invariants the algorithms rely on.

// encoder accumulates a payload. All integers are unsigned varints; counts
// precede their elements; strings are length-prefixed.
type encoder struct {
	b []byte
}

func (e *encoder) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *encoder) vint(v int)       { e.uvarint(uint64(v)) }
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// decoder consumes a payload, latching the first error; all accessors
// return zero values after a failure, so decode functions can be written
// straight-line and check err once.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("store: truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// vint reads a non-negative int and bounds it both against the platform
// int and against the remaining payload when each element costs at least
// one byte — a corrupt count can then never drive a huge allocation.
func (d *decoder) vint(perElement int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(int(^uint(0)>>1)) || (perElement > 0 && v > uint64(len(d.b))) {
		d.fail("store: implausible count %d for %d remaining bytes", v, len(d.b))
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.vint(1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("store: %d trailing bytes after payload", len(d.b))
	}
	return nil
}

// encodeFSP serializes a process: name, observable action names and
// variable names in interning order (so decoded Action and VarID values
// match the original), then per-state extensions and arcs.
func encodeFSP(f *fsp.FSP) []byte {
	e := &encoder{}
	e.str(f.Name())
	alpha := f.Alphabet()
	e.vint(alpha.Len() - 1) // observable actions; tau is implicit
	for _, a := range alpha.Observable() {
		e.str(alpha.Name(a))
	}
	vars := f.Vars()
	e.vint(vars.Len())
	for id := 0; id < vars.Len(); id++ {
		e.str(vars.Name(fsp.VarID(id)))
	}
	n := f.NumStates()
	e.vint(n)
	e.vint(int(f.Start()))
	for s := 0; s < n; s++ {
		ids := f.Ext(fsp.State(s)).IDs()
		e.vint(len(ids))
		for _, id := range ids {
			e.vint(int(id))
		}
		arcs := f.Arcs(fsp.State(s))
		e.vint(len(arcs))
		for _, a := range arcs {
			e.vint(int(a.Act))
			e.vint(int(a.To))
		}
	}
	return e.b
}

func decodeFSP(payload []byte) (*fsp.FSP, error) {
	d := &decoder{b: payload}
	name := d.str()
	numObs := d.vint(1)
	obs := make([]string, 0, numObs)
	for i := 0; i < numObs; i++ {
		nm := d.str()
		if nm == fsp.TauName || nm == "" {
			d.fail("store: invalid observable action %q", nm)
		}
		obs = append(obs, nm)
	}
	numVars := d.vint(1)
	varNames := make([]string, 0, numVars)
	for i := 0; i < numVars; i++ {
		varNames = append(varNames, d.str())
	}
	n := d.vint(1)
	start := d.vint(0)
	if d.err != nil {
		return nil, d.err
	}
	if n == 0 || start >= n {
		return nil, fmt.Errorf("store: process with %d states, start %d", n, start)
	}
	alpha := fsp.NewAlphabet(obs...)
	if alpha.Len() != numObs+1 {
		return nil, fmt.Errorf("store: duplicate action names in payload")
	}
	vt, err := fsp.NewVarTable(varNames...)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	b := fsp.NewBuilderWith(name, alpha, vt)
	b.AddStates(n)
	b.SetStart(fsp.State(start))
	for s := 0; s < n; s++ {
		numExt := d.vint(1)
		for i := 0; i < numExt; i++ {
			id := d.vint(0)
			if d.err != nil {
				return nil, d.err
			}
			if id >= numVars {
				return nil, fmt.Errorf("store: out-of-range variable id %d", id)
			}
			b.Extend(fsp.State(s), vt.Name(fsp.VarID(id)))
		}
		numArcs := d.vint(2)
		for i := 0; i < numArcs; i++ {
			act := d.vint(0)
			to := d.vint(0)
			if d.err != nil {
				return nil, d.err
			}
			if act > numObs || to >= n {
				return nil, fmt.Errorf("store: out-of-range arc (%d, %d)", act, to)
			}
			b.Arc(fsp.State(s), fsp.Action(act), fsp.State(to))
		}
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return b.Build()
}

// encodeClosure serializes a tau-closure as its per-state sets,
// delta-encoded (sets are sorted, so gaps are small).
func encodeClosure(c fsp.Closure) []byte {
	e := &encoder{}
	n := c.NumStates()
	e.vint(n)
	for s := 0; s < n; s++ {
		set := c.Of(fsp.State(s))
		e.vint(len(set))
		prev := fsp.State(0)
		for _, t := range set {
			e.uvarint(uint64(t - prev))
			prev = t
		}
	}
	return e.b
}

func decodeClosure(payload []byte) (fsp.Closure, error) {
	d := &decoder{b: payload}
	n := d.vint(1)
	sets := make([][]fsp.State, 0, n)
	for s := 0; s < n; s++ {
		k := d.vint(1)
		set := make([]fsp.State, 0, k)
		cur := fsp.State(0)
		for i := 0; i < k; i++ {
			cur += fsp.State(d.uvarint())
			set = append(set, cur)
		}
		sets = append(sets, set)
	}
	if err := d.done(); err != nil {
		return fsp.Closure{}, err
	}
	return fsp.ClosureFromSets(n, sets)
}

// encodeIndex serializes a CSR refinement index by its forward arrays and
// label names; the reverse index, count records and signatures are
// rederived by lts.FromCSR on decode.
func encodeIndex(x *lts.Index) []byte {
	e := &encoder{}
	e.vint(x.N())
	e.vint(x.NumLabels())
	labels := x.LabelNames()
	if labels == nil {
		e.vint(0)
	} else {
		e.vint(1)
		for _, l := range labels {
			e.str(l)
		}
	}
	start, label, to := x.Fwd()
	for s := 0; s < x.N(); s++ {
		e.vint(int(start[s+1] - start[s]))
	}
	e.vint(len(to))
	for i := range to {
		e.vint(int(label[i]))
		e.vint(int(to[i]))
	}
	return e.b
}

func decodeIndex(payload []byte) (*lts.Index, error) {
	d := &decoder{b: payload}
	n := d.vint(1)
	numLabels := d.vint(0)
	var labels []string
	if d.vint(0) == 1 {
		labels = make([]string, 0, numLabels)
		for i := 0; i < numLabels; i++ {
			labels = append(labels, d.str())
		}
	}
	fwdStart := make([]int32, n+1)
	for s := 0; s < n; s++ {
		deg := d.vint(1)
		fwdStart[s+1] = fwdStart[s] + int32(deg)
	}
	m := d.vint(2)
	if d.err != nil {
		return nil, d.err
	}
	if m != int(fwdStart[n]) {
		return nil, fmt.Errorf("store: index edge count %d does not match degrees %d", m, fwdStart[n])
	}
	fwdLabel := make([]int32, m)
	fwdTo := make([]int32, m)
	for i := 0; i < m; i++ {
		fwdLabel[i] = int32(d.vint(0))
		fwdTo[i] = int32(d.vint(0))
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return lts.FromCSR(n, numLabels, labels, fwdStart, fwdLabel, fwdTo)
}
