package ccs

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSpectrumBranchingPair(t *testing.T) {
	p := mustExpr(t, "a(b+c)")
	q := mustExpr(t, "ab+ac")
	rows, err := Spectrum(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"strong (~)":                  false,
		"observation congruence (≈ᶜ)": false,
		"observational (≈)":           false,
		"simulation equivalence":      false,
		"trace (≈_1)":                 true,
	}
	for _, row := range rows {
		if row.Skipped {
			if !strings.Contains(row.Relation, "failure") && row.Relation != "completed-trace" {
				t.Errorf("unexpected skip: %+v", row)
			}
			continue
		}
		if w, ok := want[row.Relation]; ok && row.Holds != w {
			t.Errorf("%s = %v, want %v", row.Relation, row.Holds, w)
		}
	}
	// Representative FSPs are standard but not restricted: failure row must
	// be skipped.
	found := false
	for _, row := range rows {
		if strings.Contains(row.Relation, "failure") && row.Skipped {
			found = true
		}
	}
	if !found {
		t.Errorf("failure row should be skipped for non-restricted processes")
	}
}

func TestSpectrumRestrictedPair(t *testing.T) {
	p := mustParse(t, "states 3\nstart 0\next 0 x\next 1 x\next 2 x\narc 0 a 1\narc 1 a 2\n")
	q := mustParse(t, "states 4\nstart 0\next 0 x\next 1 x\next 2 x\next 3 x\narc 0 a 1\narc 1 a 2\narc 0 a 3\n")
	rows, err := Spectrum(p, q)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SpectrumVerdict{}
	for _, row := range rows {
		byName[row.Relation] = row
	}
	if byName["failure (≡)"].Skipped {
		t.Fatalf("failure row skipped for restricted pair")
	}
	if byName["failure (≡)"].Holds {
		t.Errorf("aa ≡ aa+a must fail")
	}
	if !strings.Contains(byName["failure (≡)"].Note, "witness") {
		t.Errorf("failure witness missing: %+v", byName["failure (≡)"])
	}
	if !byName["trace (≈_1)"].Holds {
		t.Errorf("traces must coincide")
	}
}

// TestSpectrumInclusionsHold verifies the implication structure on random
// restricted pairs: ~ ⇒ ≈ᶜ ⇒ ≈ ⇒ ≡ ⇒ ≈_1, and ~ ⇒ sim ⇒ ≈_1.
func TestSpectrumInclusionsHold(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		p := randomRestricted(t, rng)
		q := randomRestricted(t, rng)
		rows, err := Spectrum(p, q)
		if err != nil {
			t.Fatal(err)
		}
		v := map[string]bool{}
		for _, row := range rows {
			if !row.Skipped {
				v[row.Relation] = row.Holds
			}
		}
		implications := [][2]string{
			{"strong (~)", "observation congruence (≈ᶜ)"},
			{"observation congruence (≈ᶜ)", "observational (≈)"},
			{"observational (≈)", "failure (≡)"},
			{"failure (≡)", "completed-trace"},
			{"completed-trace", "trace (≈_1)"},
			{"strong (~)", "simulation equivalence"},
			{"simulation equivalence", "trace (≈_1)"},
		}
		for _, imp := range implications {
			if v[imp[0]] && !v[imp[1]] {
				t.Fatalf("trial %d: %s holds but %s fails", trial, imp[0], imp[1])
			}
		}
	}
}

func randomRestricted(t *testing.T, rng *rand.Rand) *Process {
	t.Helper()
	n := 2 + rng.Intn(4)
	b := NewBuilder("r")
	b.AddStates(n)
	arcs := rng.Intn(2 * n)
	for i := 0; i < arcs; i++ {
		act := "a"
		if rng.Intn(2) == 0 {
			act = "b"
		}
		b.ArcName(State(rng.Intn(n)), act, State(rng.Intn(n)))
	}
	for s := 0; s < n; s++ {
		b.Accept(State(s))
	}
	return b.MustBuild()
}
