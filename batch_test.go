package ccs_test

import (
	"context"
	"testing"

	"ccs"
)

func mustExpr(t *testing.T, src string) *ccs.Process {
	t.Helper()
	p, err := ccs.FromExpression(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckerCheck(t *testing.T) {
	c := ccs.NewChecker()
	ctx := context.Background()
	aa := mustExpr(t, "aa")
	aPlusA := mustExpr(t, "a+a")
	a := mustExpr(t, "a")
	eq, err := c.Check(ctx, aPlusA, a, ccs.Strong, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("a+a ~ a expected")
	}
	eq, err = c.Check(ctx, aa, a, ccs.Trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("aa and a are not trace equivalent")
	}
}

func TestCheckAllMixedRelations(t *testing.T) {
	aa := mustExpr(t, "aa")
	aPlusA := mustExpr(t, "a+a")
	a := mustExpr(t, "a")
	k2, k2n, err := ccs.ParseRelation("k2")
	if err != nil {
		t.Fatal(err)
	}
	// Failure equivalence wants restricted processes (every state
	// accepting); the interchange format builds one directly.
	restricted, err := ccs.ParseProcessString(`fsp r
states 2
start 0
ext 0 x
ext 1 x
arc 0 a 1
`)
	if err != nil {
		t.Fatal(err)
	}
	queries := []ccs.Query{
		{P: aPlusA, Q: a, Rel: ccs.Strong},
		{P: aa, Q: a, Rel: ccs.Weak},
		{P: restricted, Q: restricted, Rel: ccs.Failure},
		{P: aPlusA, Q: a, Rel: k2, K: k2n},
	}
	res := ccs.CheckAll(context.Background(), queries, 2)
	want := []bool{true, false, true, true}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if r.Equivalent != want[i] {
			t.Errorf("query %d = %v, want %v", i, r.Equivalent, want[i])
		}
	}
}

func TestCheckAllBadRelation(t *testing.T) {
	a := mustExpr(t, "a")
	res := ccs.CheckAll(context.Background(), []ccs.Query{
		{P: a, Q: a, Rel: ccs.Relation(42)},
		{P: a, Q: a, Rel: ccs.Strong},
	}, 1)
	if res[0].Err == nil {
		t.Error("unknown relation must error")
	}
	if res[1].Err != nil || !res[1].Equivalent {
		t.Errorf("valid query alongside a bad one must still run: %+v", res[1])
	}
}

func TestCheckAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := mustExpr(t, "a")
	res := ccs.CheckAll(ctx, []ccs.Query{{P: a, Q: a, Rel: ccs.Strong}}, 1)
	if res[0].Err == nil {
		t.Error("cancelled context must surface as a per-query error")
	}
}

// TestCheckerReuseAcrossBatches exercises the documented cache contract:
// the same *Process value fed to successive batches keeps its artifacts.
func TestCheckerReuseAcrossBatches(t *testing.T) {
	c := ccs.NewChecker()
	ctx := context.Background()
	p := mustExpr(t, "(ab)*")
	q := mustExpr(t, "(ab)*+0")
	for round := 0; round < 3; round++ {
		res := c.CheckAll(ctx, []ccs.Query{{P: p, Q: q, Rel: ccs.Weak}}, 0)
		if res[0].Err != nil {
			t.Fatalf("round %d: %v", round, res[0].Err)
		}
		if !res[0].Equivalent {
			t.Errorf("round %d: (ab)* ≈ (ab)*+0 expected", round)
		}
	}
}
